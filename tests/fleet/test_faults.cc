/**
 * @file
 * Fault-injection tests — the PR-7 guarantees:
 *
 *  - A fleet with faults disabled is bit-identical to one that never
 *    heard of the fault subsystem (inert FaultSpec/RetrySpec knobs
 *    change nothing), and healthy-first routing equals least-loaded
 *    on a fault-free fleet.
 *  - Faulted runs are deterministic: identical configs agree on
 *    every sample, counter, and the full fault timeline.
 *  - Crash semantics: queued + active requests evicted, retried
 *    after backoff, the instance rejoins at its repair time, and the
 *    accounting invariants hold (retired + dropped == workload
 *    requests; routed == requests + retries scheduled).
 *  - Degrade semantics: a straggler window slows the instance
 *    without downtime, and failure-aware routing steers around it.
 *  - Edge cases: zero-request workloads, fewer requests than
 *    instances, retry exhaustion, crashes landing on a draining
 *    autoscaled instance.
 */

#include <gtest/gtest.h>

#include <vector>

#include "fleet/faults.hh"
#include "fleet/fleet.hh"

namespace duplex
{
namespace
{

SimConfig
baseSim()
{
    SimConfig c;
    c.systemName = "gpu";
    c.model = mixtralConfig();
    c.maxBatch = 16;
    c.workload.meanInputLen = 256;
    c.workload.meanOutputLen = 64;
    c.numRequests = 48;
    c.warmupRequests = 8;
    c.maxStages = 200000;
    return c;
}

/** Bit-exact comparison of two sample accumulators. */
void
expectSameSamples(const SampleStats &a, const SampleStats &b,
                  const char *what)
{
    EXPECT_EQ(a.count(), b.count()) << what;
    EXPECT_EQ(a.sum(), b.sum()) << what; // same fp add order
    EXPECT_EQ(a.min(), b.min()) << what;
    EXPECT_EQ(a.max(), b.max()) << what;
}

/** Bit-exact comparison of two whole fleet outcomes. */
void
expectSameFleetResult(const FleetResult &a, const FleetResult &b)
{
    EXPECT_EQ(a.metrics.elapsed, b.metrics.elapsed);
    EXPECT_EQ(a.generatedTokens, b.generatedTokens);
    EXPECT_EQ(a.requestsRouted, b.requestsRouted);
    EXPECT_EQ(a.requestsRetired, b.requestsRetired);
    EXPECT_EQ(a.totals.time, b.totals.time);
    EXPECT_EQ(a.totals.totalEnergyJ(), b.totals.totalEnergyJ());
    expectSameSamples(a.metrics.e2eMs, b.metrics.e2eMs, "e2e");
    expectSameSamples(a.metrics.tbtMs, b.metrics.tbtMs, "tbt");
    expectSameSamples(a.metrics.t2ftMs, b.metrics.t2ftMs, "t2ft");
    EXPECT_EQ(a.crashes, b.crashes);
    EXPECT_EQ(a.degradeWindows, b.degradeWindows);
    EXPECT_EQ(a.requestsLost, b.requestsLost);
    EXPECT_EQ(a.lostWorkTokens, b.lostWorkTokens);
    EXPECT_EQ(a.retriesScheduled, b.retriesScheduled);
    EXPECT_EQ(a.requestsDropped, b.requestsDropped);
    EXPECT_EQ(a.totalDowntime, b.totalDowntime);
    ASSERT_EQ(a.faultEvents.size(), b.faultEvents.size());
    for (std::size_t i = 0; i < a.faultEvents.size(); ++i) {
        EXPECT_EQ(a.faultEvents[i].kind, b.faultEvents[i].kind);
        EXPECT_EQ(a.faultEvents[i].instance,
                  b.faultEvents[i].instance);
        EXPECT_EQ(a.faultEvents[i].at, b.faultEvents[i].at);
    }
    ASSERT_EQ(a.perInstance.size(), b.perInstance.size());
    for (std::size_t i = 0; i < a.perInstance.size(); ++i)
        EXPECT_EQ(a.perInstance[i].generatedTokens,
                  b.perInstance[i].generatedTokens)
            << "instance " << i;
}

/** Collects the fault/retry callback stream of one run. */
class FaultRecorder : public FleetObserver
{
  public:
    void onFault(int instance, const FaultEvent &event,
                 PicoSec now) override
    {
        (void)now;
        (void)instance;
        faults.push_back(event);
    }

    void onRetry(int instance, const Request &request, int attempt,
                 bool dropped, PicoSec at) override
    {
        (void)instance;
        (void)request;
        (void)at;
        if (dropped)
            ++drops;
        else
            ++retries;
        lastAttempt = attempt;
    }

    std::vector<FaultEvent> faults;
    int retries = 0;
    int drops = 0;
    int lastAttempt = 0;
};

// --- the no-fault bit-identity contract -------------------------

TEST(Faults, InertFaultKnobsChangeNothing)
{
    // A config that never mentions faults vs one that fiddles every
    // knob that does NOT enable them (mttr, straggler shape, retry
    // discipline): byte-identical outcomes, zero fault counters.
    FleetConfig plain;
    plain.sim = baseSim();
    plain.sim.workload.qps = 12.0;
    plain.instances = 3;
    plain.policy = "least-loaded";

    FleetConfig inert = plain;
    inert.faults.mttrSec = 9.0;
    inert.faults.stragglerFraction = 0.9;
    inert.faults.stragglerFactor = 7.0;
    inert.retry.maxAttempts = 1;
    inert.retry.backoffSec = 3.0;

    const FleetResult a = FleetDriver(plain).run();
    const FleetResult b = FleetDriver(inert).run();
    expectSameFleetResult(a, b);
    EXPECT_EQ(a.crashes, 0);
    EXPECT_EQ(a.requestsLost, 0);
    EXPECT_EQ(a.totalDowntime, 0);
    EXPECT_TRUE(a.faultEvents.empty());
    EXPECT_DOUBLE_EQ(a.availability(), 1.0);
}

TEST(Faults, HealthyFirstEqualsLeastLoadedWhenAllHealthy)
{
    // With every instance Healthy, the failure-aware policy must
    // degenerate to exactly least-loaded — no behavior tax for
    // running it on a reliable fleet.
    FleetConfig fc;
    fc.sim = baseSim();
    fc.sim.workload.qps = 12.0;
    fc.instances = 3;
    fc.policy = "least-loaded";
    const FleetResult ll = FleetDriver(fc).run();

    fc.policy = "healthy-first";
    const FleetResult hf = FleetDriver(fc).run();
    expectSameFleetResult(ll, hf);
}

// --- crash semantics --------------------------------------------

TEST(Faults, CrashEvictsRetriesRejoinsAndBalances)
{
    FleetConfig fc;
    fc.sim = baseSim();
    fc.sim.workload.qps = 16.0;
    fc.sim.numRequests = 64;
    fc.instances = 2;
    fc.policy = "least-loaded";
    fc.faults.events =
        parseFaultList("crash@1.0:0:0.5"); // down 0.5 s, rejoins

    FaultRecorder rec;
    FleetDriver driver(fc);
    driver.addObserver(&rec);
    const FleetResult r = driver.run();

    EXPECT_EQ(r.crashes, 1);
    EXPECT_GT(r.requestsLost, 0) << "crash hit an idle instance; "
                                    "raise qps or move the event";
    EXPECT_EQ(r.retriesScheduled, r.requestsLost)
        << "nothing should be dropped under the default budget";
    EXPECT_EQ(r.requestsDropped, 0);
    EXPECT_GT(r.totalDowntime, 0);
    EXPECT_LT(r.availability(), 1.0);
    EXPECT_GT(r.availability(), 0.0);

    // Accounting closes: every workload request retired, and the
    // router saw each loss come back around exactly once.
    EXPECT_EQ(r.requestsRetired, fc.sim.numRequests);
    EXPECT_EQ(r.requestsRouted,
              fc.sim.numRequests + r.retriesScheduled);

    // Timeline: the crash strikes at/after its scheduled time (the
    // stage-boundary alignment only moves events forward), then the
    // rejoin closes the window no earlier than the scheduled repair
    // time (strike time + downtime, anchored to the schedule).
    ASSERT_EQ(rec.faults.size(), 2u);
    EXPECT_EQ(rec.faults[0].kind, FaultKind::Crash);
    EXPECT_EQ(rec.faults[0].instance, 0);
    EXPECT_GE(rec.faults[0].at, secToPs(1.0));
    EXPECT_EQ(rec.faults[1].kind, FaultKind::Rejoin);
    EXPECT_GE(rec.faults[1].at, secToPs(1.5));
    EXPECT_GT(rec.faults[1].at, rec.faults[0].at);
    EXPECT_EQ(static_cast<std::int64_t>(rec.retries),
              r.retriesScheduled);
    EXPECT_EQ(rec.drops, 0);
    ASSERT_EQ(r.faultEvents.size(), rec.faults.size());
}

TEST(Faults, RetryExhaustionDropsEveryLoss)
{
    // maxAttempts = 0: a crashed-out request is dropped on the
    // spot. The crashed instance never rejoins, so the survivor
    // serves the rest — and the books still balance.
    FleetConfig fc;
    fc.sim = baseSim();
    fc.sim.workload.qps = 16.0;
    fc.sim.numRequests = 64;
    fc.instances = 2;
    fc.policy = "least-loaded";
    fc.faults.events = parseFaultList("crash@1.0:0"); // no rejoin
    fc.retry.maxAttempts = 0;

    FaultRecorder rec;
    FleetDriver driver(fc);
    driver.addObserver(&rec);
    const FleetResult r = driver.run();

    EXPECT_GT(r.requestsLost, 0);
    EXPECT_EQ(r.requestsDropped, r.requestsLost);
    EXPECT_EQ(r.retriesScheduled, 0);
    EXPECT_EQ(r.requestsRetired + r.requestsDropped,
              fc.sim.numRequests);
    EXPECT_EQ(r.requestsRouted, fc.sim.numRequests);
    EXPECT_EQ(static_cast<std::int64_t>(rec.drops),
              r.requestsDropped);
    EXPECT_EQ(rec.retries, 0);
}

// --- degrade semantics ------------------------------------------

TEST(Faults, DegradeWindowSlowsWithoutDowntime)
{
    // One instance, closed loop, the whole run inside a 4x
    // straggler window: everything still retires, the makespan
    // stretches, and availability stays 1.0 (slow != down).
    FleetConfig fc;
    fc.sim = baseSim();
    fc.instances = 1;
    const FleetResult plain = FleetDriver(fc).run();

    FleetConfig slow = fc;
    slow.faults.events = parseFaultList("degrade@0:0:1000:4");
    const FleetResult r = FleetDriver(slow).run();

    EXPECT_EQ(r.degradeWindows, 1);
    EXPECT_EQ(r.crashes, 0);
    EXPECT_EQ(r.requestsRetired, fc.sim.numRequests);
    EXPECT_GT(r.metrics.elapsed, plain.metrics.elapsed);
    EXPECT_EQ(r.totalDowntime, 0);
    EXPECT_DOUBLE_EQ(r.availability(), 1.0);
}

TEST(Faults, HealthyFirstSteersAroundTheStraggler)
{
    // Instance 0 straggles for the whole run; the failure-aware
    // policy must send the bulk of the traffic to instance 1.
    FleetConfig fc;
    fc.sim = baseSim();
    fc.sim.workload.qps = 8.0;
    fc.sim.numRequests = 64;
    fc.instances = 2;
    fc.policy = "healthy-first";
    fc.faults.events = parseFaultList("degrade@0:0:1000:8");

    class Router : public FleetObserver
    {
      public:
        void onRequestRouted(int instance, const Request &,
                             PicoSec) override
        {
            ++routed[instance];
        }
        std::int64_t routed[2] = {0, 0};
    } router;

    FleetDriver driver(fc);
    driver.addObserver(&router);
    const FleetResult r = driver.run();
    EXPECT_EQ(r.requestsRetired, fc.sim.numRequests);
    EXPECT_GT(router.routed[1], router.routed[0])
        << "healthy-first kept feeding the straggler";
}

// --- determinism ------------------------------------------------

TEST(Faults, RandomFaultsAreDeterministic)
{
    FleetConfig fc;
    fc.sim = baseSim();
    fc.sim.workload.qps = 12.0;
    fc.sim.numRequests = 96;
    fc.instances = 4;
    fc.policy = "healthy-first";
    fc.faults.mtbfSec = 1.5;
    fc.faults.mttrSec = 0.5;
    fc.faults.stragglerFraction = 0.3;

    const FleetResult a = FleetDriver(fc).run();
    const FleetResult b = FleetDriver(fc).run();
    EXPECT_GT(a.crashes + a.degradeWindows, 0)
        << "MTBF too long to exercise anything";
    expectSameFleetResult(a, b);
}

// --- edge cases -------------------------------------------------

TEST(Faults, ZeroRequestWorkloadFinishesClean)
{
    FleetConfig fc;
    fc.sim = baseSim();
    fc.sim.numRequests = 0;
    fc.sim.warmupRequests = 0;
    fc.instances = 2;
    fc.faults.events = parseFaultList("crash@1.0:0:0.5");

    const FleetResult r = FleetDriver(fc).run();
    EXPECT_EQ(r.requestsRouted, 0);
    EXPECT_EQ(r.requestsRetired, 0);
    EXPECT_EQ(r.requestsLost, 0);
    EXPECT_EQ(r.requestsDropped, 0);
    EXPECT_DOUBLE_EQ(r.availability(), 1.0);
}

TEST(Faults, FewerRequestsThanInstances)
{
    // 3 requests across 8 instances, one of which crashes while
    // mostly idle: everything still retires.
    FleetConfig fc;
    fc.sim = baseSim();
    fc.sim.workload.qps = 4.0;
    fc.sim.numRequests = 3;
    fc.sim.warmupRequests = 0;
    fc.instances = 8;
    fc.policy = "round-robin";
    fc.faults.events = parseFaultList("crash@0.1:5:0.2");

    const FleetResult r = FleetDriver(fc).run();
    EXPECT_EQ(r.requestsRetired + r.requestsDropped, 3);
    EXPECT_EQ(r.requestsRouted,
              3 + r.retriesScheduled);
}

TEST(Faults, CrashesDuringAutoscaleDrainsKeepTheBooks)
{
    // The hardest interleaving: a diurnal ramp scaling up and
    // draining down while random crashes and stragglers land on
    // instances in every state (including already-draining ones).
    // The invariants must survive all of it.
    FleetConfig fc;
    fc.sim = baseSim();
    fc.sim.workloadName = "diurnal";
    fc.sim.workload.diurnalLowQps = 0.5;
    fc.sim.workload.diurnalHighQps = 40.0;
    fc.sim.workload.diurnalPeriodSec = 16.0;
    fc.sim.workload.meanInputLen = 128;
    fc.sim.workload.meanOutputLen = 32;
    fc.sim.numRequests = 400;
    fc.instances = 1;
    fc.policy = "healthy-first";
    fc.scaling.enabled = true;
    fc.scaling.minInstances = 1;
    fc.scaling.maxInstances = 4;
    fc.scaling.upQpsPerInstance = 6.0;
    fc.scaling.downQpsPerInstance = 2.0;
    fc.scaling.windowSec = 2.0;
    fc.scaling.cooldownSec = 3.0;
    fc.faults.mtbfSec = 2.0;
    fc.faults.mttrSec = 0.5;
    fc.faults.stragglerFraction = 0.25;

    const FleetResult a = FleetDriver(fc).run();
    EXPECT_GT(a.crashes, 0) << "no crash landed; shorten the MTBF";
    EXPECT_GE(a.scaleUps, 1);
    EXPECT_EQ(a.requestsRetired + a.requestsDropped,
              fc.sim.numRequests);
    EXPECT_EQ(a.requestsRouted,
              fc.sim.numRequests + a.retriesScheduled);
    EXPECT_GT(a.totalDowntime, 0);
    EXPECT_LT(a.availability(), 1.0);

    // And the whole tangle double-runs byte-identical.
    const FleetResult b = FleetDriver(fc).run();
    expectSameFleetResult(a, b);
}

// --- the --faults grammar ---------------------------------------

TEST(Faults, ParseFaultListGrammar)
{
    const auto events =
        parseFaultList("crash@2:0; degrade@4:1:2:3.5, crash@6:2:1");
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].kind, FaultKind::Crash);
    EXPECT_EQ(events[0].instance, 0);
    EXPECT_EQ(events[0].at, secToPs(2.0));
    EXPECT_EQ(events[0].duration, -1); // never rejoins
    EXPECT_EQ(events[1].kind, FaultKind::Degrade);
    EXPECT_EQ(events[1].instance, 1);
    EXPECT_EQ(events[1].duration, secToPs(2.0));
    EXPECT_DOUBLE_EQ(events[1].factor, 3.5);
    EXPECT_EQ(events[2].duration, secToPs(1.0));
}

TEST(Faults, ParseFaultListNamesTheBadItem)
{
    EXPECT_EXIT({ parseFaultList("crash@2:0;flood@3:1"); },
                ::testing::ExitedWithCode(1), "flood@3:1");
}

TEST(Faults, NegativeRetryBudgetIsFatal)
{
    EXPECT_EXIT(
        {
            FleetConfig fc;
            fc.sim = baseSim();
            fc.faults.events = parseFaultList("crash@1:0");
            fc.retry.maxAttempts = -1;
            FleetDriver(fc).run();
        },
        ::testing::ExitedWithCode(1), "maxAttempts");
}

} // namespace
} // namespace duplex
