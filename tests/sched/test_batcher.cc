/**
 * @file
 * Continuous-batching scheduler tests (Section II-C semantics).
 */

#include <gtest/gtest.h>

#include "sched/batcher.hh"

namespace duplex
{
namespace
{

std::vector<Request>
makeRequests(int n, std::int64_t lin, std::int64_t lout,
             PicoSec arrival_step = 0)
{
    std::vector<Request> reqs;
    for (int i = 0; i < n; ++i) {
        Request r;
        r.id = i;
        r.inputLen = lin;
        r.outputLen = lout;
        r.arrival = arrival_step * i;
        reqs.push_back(r);
    }
    return reqs;
}

TEST(ContinuousBatcher, FirstStageIsMixed)
{
    BatcherConfig cfg;
    cfg.maxBatch = 4;
    ContinuousBatcher b(cfg, makeRequests(4, 128, 4));
    const StageShape s = b.formStage(0);
    EXPECT_EQ(s.prefillLengths.size(), 4u);
    EXPECT_EQ(s.decodeContexts.size(), 0u);
    EXPECT_TRUE(s.isMixed());
    EXPECT_EQ(b.mixedStages(), 1);
}

TEST(ContinuousBatcher, PrefillProducesFirstToken)
{
    BatcherConfig cfg;
    cfg.maxBatch = 2;
    cfg.exactStageView = true; // pin the per-context slow path
    ContinuousBatcher b(cfg, makeRequests(2, 128, 4));
    b.formStage(0);
    b.completeStage(1000);
    EXPECT_EQ(b.totalGenerated(), 2);
    const StageShape s2 = b.formStage(1000);
    // Second stage: both requests decode with context 129.
    ASSERT_EQ(s2.decodeContexts.size(), 2u);
    EXPECT_EQ(s2.decodeContexts[0], 129);
    EXPECT_FALSE(s2.isMixed());
}

TEST(ContinuousBatcher, RunsToCompletion)
{
    BatcherConfig cfg;
    cfg.maxBatch = 2;
    ContinuousBatcher b(cfg, makeRequests(2, 16, 3));
    PicoSec now = 0;
    while (!b.allDone()) {
        b.formStage(now);
        now += 1000;
        b.completeStage(now);
    }
    EXPECT_EQ(b.finished().size(), 2u);
    for (const auto &r : b.finished()) {
        EXPECT_EQ(r.generated, 3);
        EXPECT_EQ(r.tokenTimes.size(), 3u);
        EXPECT_GT(r.finished, r.firstToken);
    }
}

TEST(ContinuousBatcher, ClosedLoopRefillsSlots)
{
    BatcherConfig cfg;
    cfg.maxBatch = 2;
    // Four requests, two slots: the next request joins only after
    // one finishes.
    ContinuousBatcher b(cfg, makeRequests(4, 16, 2));
    PicoSec now = 0;
    int mixed_after_start = 0;
    b.formStage(now);
    now += 100;
    b.completeStage(now);
    while (!b.allDone()) {
        const StageShape s = b.formStage(now);
        if (s.isMixed())
            ++mixed_after_start;
        now += 100;
        b.completeStage(now);
    }
    // Replacement prefills create later mixed stages.
    EXPECT_GT(mixed_after_start, 0);
    EXPECT_EQ(b.finished().size(), 4u);
}

TEST(ContinuousBatcher, StageTypeCounting)
{
    BatcherConfig cfg;
    cfg.maxBatch = 2;
    ContinuousBatcher b(cfg, makeRequests(2, 16, 4));
    PicoSec now = 0;
    while (!b.allDone()) {
        b.formStage(now);
        now += 10;
        b.completeStage(now);
    }
    // One mixed admission stage, then three decoding-only stages.
    EXPECT_EQ(b.mixedStages(), 1);
    EXPECT_EQ(b.decodingOnlyStages(), 3);
}

TEST(ContinuousBatcher, KvCapacityBlocksAdmission)
{
    BatcherConfig cfg;
    cfg.maxBatch = 8;
    cfg.maxKvTokens = 300;
    // Each prompt needs 128 tokens of KV; only two fit.
    ContinuousBatcher b(cfg, makeRequests(8, 128, 4));
    const StageShape s = b.formStage(0);
    EXPECT_EQ(s.prefillLengths.size(), 2u);
}

TEST(ContinuousBatcher, OpenLoopHonorsArrivals)
{
    BatcherConfig cfg;
    cfg.maxBatch = 8;
    cfg.closedLoop = false;
    // Arrivals every 1 ms.
    ContinuousBatcher b(cfg, makeRequests(4, 16, 4, kPsPerMs));
    const StageShape s0 = b.formStage(0);
    EXPECT_EQ(s0.prefillLengths.size(), 1u); // only id 0 arrived
    b.completeStage(100);
    EXPECT_EQ(b.nextArrival(), kPsPerMs);
    const StageShape s1 = b.formStage(2 * kPsPerMs);
    EXPECT_EQ(s1.prefillLengths.size(), 2u); // ids 1 and 2
}

TEST(ContinuousBatcher, OpenLoopT2ftIncludesQueueing)
{
    BatcherConfig cfg;
    cfg.maxBatch = 1;
    cfg.closedLoop = false;
    ContinuousBatcher b(cfg, makeRequests(2, 16, 1, 0));
    // Both arrive at 0 but only one slot exists.
    b.formStage(0);
    b.completeStage(5000);
    b.formStage(5000);
    b.completeStage(9000);
    ASSERT_EQ(b.finished().size(), 2u);
    EXPECT_EQ(b.finished()[0].firstToken, 5000);
    // The queued request keeps its arrival of 0.
    EXPECT_EQ(b.finished()[1].arrival, 0);
    EXPECT_EQ(b.finished()[1].firstToken, 9000);
}

TEST(ContinuousBatcher, ClosedLoopArrivalIsAdmission)
{
    BatcherConfig cfg;
    cfg.maxBatch = 1;
    ContinuousBatcher b(cfg, makeRequests(2, 16, 1));
    b.formStage(0);
    b.completeStage(5000);
    b.formStage(5000);
    b.completeStage(9000);
    // The second request was admitted at 5000, so T2FT is 4000.
    EXPECT_EQ(b.finished()[1].arrival, 5000);
}

TEST(ContinuousBatcher, MaxBatchHonored)
{
    BatcherConfig cfg;
    cfg.maxBatch = 3;
    ContinuousBatcher b(cfg, makeRequests(10, 16, 8));
    PicoSec now = 0;
    while (!b.allDone()) {
        const StageShape s = b.formStage(now);
        EXPECT_LE(s.decodeContexts.size() + s.prefillLengths.size(),
                  3u);
        now += 10;
        b.completeStage(now);
    }
}

TEST(ContinuousBatcher, StagePublishesValidAggregates)
{
    BatcherConfig cfg;
    cfg.maxBatch = 4;
    cfg.exactStageView = true; // compare agg against the vectors
    ContinuousBatcher b(cfg, makeRequests(8, 64, 4));
    PicoSec now = 0;
    while (!b.allDone()) {
        const StageShape s = b.formStage(now);
        ASSERT_TRUE(s.aggValid);
        EXPECT_EQ(s.agg, aggregatesOf(s));
        now += 100;
        b.completeStage(now);
    }
}

TEST(ContinuousBatcher, IncrementalAggregatesSurviveChurn)
{
    // Mixed lifetimes force staggered admissions and retirements;
    // the incrementally maintained sums must match a recomputation
    // from the stage vectors at every stage.
    BatcherConfig cfg;
    cfg.maxBatch = 6;
    cfg.maxPrefillsPerStage = 2;
    cfg.exactStageView = true; // compare agg against the vectors
    std::vector<Request> reqs;
    for (int i = 0; i < 24; ++i) {
        Request r;
        r.id = i;
        r.inputLen = 16 + 13 * (i % 7);
        r.outputLen = 1 + i % 5; // some retire after one token
        reqs.push_back(r);
    }
    ContinuousBatcher b(cfg, std::move(reqs));
    PicoSec now = 0;
    std::int64_t stages = 0;
    while (!b.allDone()) {
        const StageShape s = b.formStage(now);
        ASSERT_TRUE(s.aggValid);
        EXPECT_EQ(s.agg, aggregatesOf(s))
            << "aggregates diverged at stage " << stages;
        now += 50;
        b.completeStage(now);
        ++stages;
    }
    EXPECT_EQ(b.finished().size(), 24u);
    // Every request retired: the decode set must be empty again.
    EXPECT_EQ(b.activeDecodeAggregates(), StageAggregates{});
}

std::vector<Request>
churnRequests(int n)
{
    // Mixed lifetimes: staggered admissions and retirements.
    std::vector<Request> reqs;
    for (int i = 0; i < n; ++i) {
        Request r;
        r.id = i;
        r.inputLen = 16 + 13 * (i % 7);
        r.outputLen = 1 + i % 5;
        reqs.push_back(r);
    }
    return reqs;
}

TEST(ContinuousBatcher, AggregateOnlyViewMatchesExactView)
{
    // The default (fast) stage view publishes no per-context
    // vector; its aggregates, stage typing, admission decisions
    // and retirement stream must be identical to the opt-in exact
    // view at every stage — including under a tight KV cap, which
    // exercises the incremental lifetime-KV accounting against the
    // exact twin's admissions.
    BatcherConfig exact_cfg;
    exact_cfg.maxBatch = 6;
    exact_cfg.maxPrefillsPerStage = 2;
    exact_cfg.maxKvTokens = 400;
    exact_cfg.exactStageView = true;
    BatcherConfig fast_cfg = exact_cfg;
    fast_cfg.exactStageView = false;

    ContinuousBatcher exact(exact_cfg, churnRequests(24));
    ContinuousBatcher fast(fast_cfg, churnRequests(24));
    PicoSec now = 0;
    while (!exact.allDone()) {
        ASSERT_FALSE(fast.allDone());
        const StageShape se = exact.formStage(now);
        const StageShape sf = fast.formStage(now);
        ASSERT_TRUE(sf.aggValid);
        EXPECT_TRUE(sf.decodeContexts.empty());
        EXPECT_EQ(sf.agg, se.agg);
        EXPECT_EQ(sf.agg, aggregatesOf(se));
        EXPECT_EQ(sf.prefillLengths, se.prefillLengths);
        EXPECT_EQ(sf.decodeTokens(), se.decodeTokens());
        EXPECT_EQ(sf.totalTokens(), se.totalTokens());
        EXPECT_EQ(sf.contextTokens(), se.contextTokens());
        now += 50;
        exact.completeStage(now);
        fast.completeStage(now);
    }
    EXPECT_TRUE(fast.allDone());
    EXPECT_EQ(exact.mixedStages(), fast.mixedStages());
    EXPECT_EQ(exact.decodingOnlyStages(),
              fast.decodingOnlyStages());
    ASSERT_EQ(exact.finished().size(), fast.finished().size());
    for (std::size_t i = 0; i < exact.finished().size(); ++i) {
        EXPECT_EQ(exact.finished()[i].id, fast.finished()[i].id);
        EXPECT_EQ(exact.finished()[i].finished,
                  fast.finished()[i].finished);
    }
}

TEST(ContinuousBatcher, KvHeadroomMatchesWalkUnderChurn)
{
    // The incremental lifetime-KV sum must gate admission exactly
    // as the per-stage walk did. On this churn workload that
    // keeps resident context under the cap at every stage (the
    // admission rule itself is the seed's: within one stage,
    // earlier admissions count only their prompt, so pathological
    // multi-admit mixes may overshoot later — identically in both
    // implementations; the exact-view twin test pins the
    // admission decisions themselves).
    BatcherConfig cfg;
    cfg.maxBatch = 8;
    cfg.maxKvTokens = 500;
    ContinuousBatcher b(cfg, churnRequests(32));
    PicoSec now = 0;
    while (!b.allDone()) {
        const StageShape s = b.formStage(now);
        // Resident context (decode set + joining prompts) stays
        // under the cap at every stage.
        EXPECT_LE(s.contextTokens(), cfg.maxKvTokens);
        now += 50;
        b.completeStage(now);
    }
    EXPECT_EQ(b.finished().size(), 32u);
}

TEST(ContinuousBatcher, DrainFinishedMatchesRetainedStream)
{
    // Draining every stage must see the same requests, in the same
    // retirement order, as the retained finished() vector — and
    // leave nothing behind.
    BatcherConfig cfg;
    cfg.maxBatch = 4;
    ContinuousBatcher retained(cfg, churnRequests(16));
    ContinuousBatcher streaming(cfg, churnRequests(16));
    std::vector<Request> drained_all;
    std::vector<Request> scratch;
    PicoSec now = 0;
    while (!retained.allDone()) {
        retained.formStage(now);
        streaming.formStage(now);
        now += 50;
        retained.completeStage(now);
        streaming.completeStage(now);
        streaming.drainFinished(scratch);
        for (Request &r : scratch)
            drained_all.push_back(std::move(r));
    }
    EXPECT_TRUE(streaming.allDone());
    EXPECT_TRUE(streaming.finished().empty()); // fully drained
    ASSERT_EQ(drained_all.size(), retained.finished().size());
    for (std::size_t i = 0; i < drained_all.size(); ++i) {
        const Request &a = drained_all[i];
        const Request &b = retained.finished()[i];
        EXPECT_EQ(a.id, b.id);
        EXPECT_EQ(a.arrival, b.arrival);
        EXPECT_EQ(a.firstToken, b.firstToken);
        EXPECT_EQ(a.finished, b.finished);
        EXPECT_EQ(a.tokenTimes, b.tokenTimes);
    }
}

TEST(ContinuousBatcher, ContextGrowsEachStage)
{
    BatcherConfig cfg;
    cfg.maxBatch = 1;
    cfg.exactStageView = true; // pin the per-context slow path
    ContinuousBatcher b(cfg, makeRequests(1, 100, 3));
    PicoSec now = 0;
    b.formStage(now);
    b.completeStage(++now);
    const StageShape s1 = b.formStage(now);
    ASSERT_EQ(s1.decodeContexts.size(), 1u);
    EXPECT_EQ(s1.decodeContexts[0], 101);
    b.completeStage(++now);
    const StageShape s2 = b.formStage(now);
    EXPECT_EQ(s2.decodeContexts[0], 102);
}

} // namespace
} // namespace duplex
