/**
 * @file
 * ArrivalQueue tests: the closed/open-loop admission discipline
 * shared by the engine's batcher loop and the split system's
 * custom loop, plus the idleAdvance no-drift rule.
 */

#include <gtest/gtest.h>

#include "sched/arrivals.hh"

namespace duplex
{
namespace
{

Request
requestAt(int id, PicoSec arrival)
{
    Request r;
    r.id = id;
    r.inputLen = 128;
    r.outputLen = 32;
    r.arrival = arrival;
    return r;
}

TEST(Arrivals, ClosedLoopIsAlwaysAdmissible)
{
    ArrivalQueue q({requestAt(0, 500), requestAt(1, 900)},
                   /*closed_loop=*/true);
    EXPECT_TRUE(q.closedLoop());
    EXPECT_TRUE(q.hasAdmissible(0));
    // Closed-loop admission overwrites the arrival stamp: the
    // request enters the queue the moment a slot frees.
    const Request r = q.pop(1234);
    EXPECT_EQ(r.id, 0);
    EXPECT_EQ(r.arrival, 1234);
}

TEST(Arrivals, OpenLoopGatesOnArrivalTime)
{
    ArrivalQueue q({requestAt(0, 500), requestAt(1, 900)},
                   /*closed_loop=*/false);
    EXPECT_FALSE(q.hasAdmissible(499));
    EXPECT_TRUE(q.hasAdmissible(500));
    // Open-loop admission preserves the Poisson arrival stamp, so
    // T2FT keeps the queueing delay.
    const Request r = q.pop(750);
    EXPECT_EQ(r.arrival, 500);
    EXPECT_FALSE(q.hasAdmissible(750));
    EXPECT_TRUE(q.hasAdmissible(900));
}

TEST(Arrivals, NextArrivalTracksTheFront)
{
    ArrivalQueue q({requestAt(0, 500), requestAt(1, 900)},
                   /*closed_loop=*/false);
    EXPECT_EQ(q.nextArrival(), 500);
    q.pop(600);
    EXPECT_EQ(q.nextArrival(), 900);
    q.pop(900);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.nextArrival(), -1);
}

TEST(Arrivals, GeneratedStreamMatchesEngineGenerator)
{
    // The SimConfig-style constructor must draw exactly the stream
    // RequestGenerator produces — both loops see the same requests.
    WorkloadConfig w;
    w.meanInputLen = 256;
    w.meanOutputLen = 64;
    w.qps = 3.0;
    RequestGenerator gen(w);
    const std::vector<Request> expected = gen.take(16);

    ArrivalQueue q(w, 16);
    EXPECT_FALSE(q.closedLoop());
    ASSERT_EQ(q.size(), 16u);
    for (const Request &e : expected) {
        EXPECT_EQ(q.front().arrival, e.arrival);
        const Request got = q.pop(e.arrival);
        EXPECT_EQ(got.id, e.id);
        EXPECT_EQ(got.inputLen, e.inputLen);
        EXPECT_EQ(got.outputLen, e.outputLen);
    }
}

TEST(Arrivals, ClosedLoopFromNonPositiveQps)
{
    WorkloadConfig w;
    w.qps = 0.0;
    EXPECT_FALSE(w.openLoop());
    EXPECT_TRUE(ArrivalQueue(w, 4).closedLoop());
    w.qps = 2.5;
    EXPECT_TRUE(w.openLoop());
    EXPECT_FALSE(ArrivalQueue(w, 4).closedLoop());
}

TEST(Arrivals, IdleAdvanceJumpsExactlyToFutureArrival)
{
    EXPECT_EQ(idleAdvance(100, 5000), 5000);
}

TEST(Arrivals, IdleAdvanceBumpsWhenArrivalPassed)
{
    // Stalled with the arrival already in the past: the clock must
    // still move, by exactly one picosecond.
    EXPECT_EQ(idleAdvance(100, 100), 101);
    EXPECT_EQ(idleAdvance(100, 50), 101);
}

} // namespace
} // namespace duplex
