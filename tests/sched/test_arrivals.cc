/**
 * @file
 * ArrivalQueue tests: the closed/open-loop admission discipline
 * shared by the engine's batcher loop and the split system's
 * custom loop, the idleAdvance no-drift rule, and the streaming
 * contract — a queue drawing lazily from a WorkloadSource behaves
 * bit-for-bit like one wrapping the same requests pre-generated.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "sched/arrivals.hh"

namespace duplex
{
namespace
{

Request
requestAt(int id, PicoSec arrival)
{
    Request r;
    r.id = id;
    r.inputLen = 128;
    r.outputLen = 32;
    r.arrival = arrival;
    return r;
}

TEST(Arrivals, ClosedLoopIsAlwaysAdmissible)
{
    ArrivalQueue q({requestAt(0, 500), requestAt(1, 900)},
                   /*closed_loop=*/true);
    EXPECT_TRUE(q.closedLoop());
    EXPECT_TRUE(q.hasAdmissible(0));
    // Closed-loop admission overwrites the arrival stamp: the
    // request enters the queue the moment a slot frees.
    const Request r = q.pop(1234);
    EXPECT_EQ(r.id, 0);
    EXPECT_EQ(r.arrival, 1234);
}

TEST(Arrivals, OpenLoopGatesOnArrivalTime)
{
    ArrivalQueue q({requestAt(0, 500), requestAt(1, 900)},
                   /*closed_loop=*/false);
    EXPECT_FALSE(q.hasAdmissible(499));
    EXPECT_TRUE(q.hasAdmissible(500));
    // Open-loop admission preserves the Poisson arrival stamp, so
    // T2FT keeps the queueing delay.
    const Request r = q.pop(750);
    EXPECT_EQ(r.arrival, 500);
    EXPECT_FALSE(q.hasAdmissible(750));
    EXPECT_TRUE(q.hasAdmissible(900));
}

TEST(Arrivals, NextArrivalTracksTheFront)
{
    ArrivalQueue q({requestAt(0, 500), requestAt(1, 900)},
                   /*closed_loop=*/false);
    EXPECT_EQ(q.nextArrival(), 500);
    q.pop(600);
    EXPECT_EQ(q.nextArrival(), 900);
    q.pop(900);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.nextArrival(), -1);
}

TEST(Arrivals, GeneratedStreamMatchesEngineGenerator)
{
    // The SimConfig-style constructor must draw exactly the stream
    // RequestGenerator produces — both loops see the same requests.
    WorkloadConfig w;
    w.meanInputLen = 256;
    w.meanOutputLen = 64;
    w.qps = 3.0;
    RequestGenerator gen(w);
    const std::vector<Request> expected = gen.take(16);

    ArrivalQueue q(w, 16);
    EXPECT_FALSE(q.closedLoop());
    ASSERT_EQ(q.size(), 16u);
    for (const Request &e : expected) {
        EXPECT_EQ(q.front().arrival, e.arrival);
        const Request got = q.pop(e.arrival);
        EXPECT_EQ(got.id, e.id);
        EXPECT_EQ(got.inputLen, e.inputLen);
        EXPECT_EQ(got.outputLen, e.outputLen);
    }
}

TEST(Arrivals, ClosedLoopFromNonPositiveQps)
{
    WorkloadConfig w;
    w.qps = 0.0;
    EXPECT_FALSE(w.openLoop());
    EXPECT_TRUE(ArrivalQueue(w, 4).closedLoop());
    w.qps = 2.5;
    EXPECT_TRUE(w.openLoop());
    EXPECT_FALSE(ArrivalQueue(w, 4).closedLoop());
}

TEST(Arrivals, IdleAdvanceJumpsExactlyToFutureArrival)
{
    EXPECT_EQ(idleAdvance(100, 5000), 5000);
}

TEST(Arrivals, IdleAdvanceBumpsWhenArrivalPassed)
{
    // Stalled with the arrival already in the past: the clock must
    // still move, by exactly one picosecond.
    EXPECT_EQ(idleAdvance(100, 100), 101);
    EXPECT_EQ(idleAdvance(100, 50), 101);
}

/** Drain @p streaming and @p vector identically, comparing every
 *  observable along the way (bit-for-bit contract). */
void
expectQueuesMatch(ArrivalQueue &streaming, ArrivalQueue &vector_q)
{
    EXPECT_EQ(streaming.closedLoop(), vector_q.closedLoop());
    ASSERT_EQ(streaming.size(), vector_q.size());
    PicoSec now = 0;
    while (!vector_q.empty()) {
        EXPECT_EQ(streaming.nextArrival(), vector_q.nextArrival());
        EXPECT_EQ(streaming.hasAdmissible(now),
                  vector_q.hasAdmissible(now));
        // Admission times walk forward like a driver loop's clock.
        now = std::max(now + 137, vector_q.nextArrival());
        const Request a = streaming.pop(now);
        const Request b = vector_q.pop(now);
        EXPECT_EQ(a.id, b.id);
        EXPECT_EQ(a.inputLen, b.inputLen);
        EXPECT_EQ(a.outputLen, b.outputLen);
        EXPECT_EQ(a.arrival, b.arrival);
    }
    EXPECT_TRUE(streaming.empty());
    EXPECT_EQ(streaming.nextArrival(), -1);
}

TEST(Arrivals, StreamingMatchesPreGeneratedClosedLoop)
{
    WorkloadConfig w;
    w.meanInputLen = 384;
    w.meanOutputLen = 96;
    RequestGenerator gen(w);
    ArrivalQueue vector_q(gen.take(32), /*closed_loop=*/true);
    ArrivalQueue streaming(w, 32);
    expectQueuesMatch(streaming, vector_q);
}

TEST(Arrivals, StreamingMatchesPreGeneratedOpenLoop)
{
    WorkloadConfig w;
    w.meanInputLen = 384;
    w.meanOutputLen = 96;
    w.qps = 5.0;
    RequestGenerator gen(w);
    ArrivalQueue vector_q(gen.take(32), /*closed_loop=*/false);
    ArrivalQueue streaming(w, 32);
    expectQueuesMatch(streaming, vector_q);
}

TEST(Arrivals, StreamingMatchesPreGeneratedTraceStamps)
{
    // Trace-stamped timestamps through a TraceSource behave exactly
    // like the same requests handed over as a vector.
    WorkloadConfig w;
    w.qps = 9.0;
    RequestGenerator gen(w);
    const std::vector<Request> recorded = gen.take(24);
    ArrivalQueue vector_q(recorded, /*closed_loop=*/false);
    ArrivalQueue streaming(
        std::make_unique<TraceSource>("in-memory", recorded), 24);
    expectQueuesMatch(streaming, vector_q);
}

TEST(Arrivals, StreamingCapsAtTheSourcesRemaining)
{
    // A 6-request trace satisfies at most 6 of a 100-request
    // budget; the queue must report exhaustion, not hang.
    WorkloadConfig w;
    w.qps = 2.0;
    RequestGenerator gen(w);
    ArrivalQueue q(
        std::make_unique<TraceSource>("short", gen.take(6)), 100);
    EXPECT_EQ(q.size(), 6u);
    for (int i = 0; i < 6; ++i)
        q.pop(q.nextArrival());
    EXPECT_TRUE(q.empty());
}

TEST(Arrivals, StreamingBuffersOnlyOneLookahead)
{
    // The streaming queue must not materialize the stream: size()
    // counts budgeted-but-undrawn requests without drawing them.
    WorkloadConfig w;
    w.qps = 1.0;
    ArrivalQueue q(w, 1000000);
    EXPECT_EQ(q.size(), 1000000u);
    // Touching the front draws exactly one request.
    EXPECT_GT(q.nextArrival(), 0);
    EXPECT_EQ(q.size(), 1000000u);
    q.pop(q.nextArrival());
    EXPECT_EQ(q.size(), 999999u);
}

} // namespace
} // namespace duplex
