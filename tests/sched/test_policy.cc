/**
 * @file
 * Scheduling-policy tests: registry round-trips, the fcfs
 * policy-object == legacy-fast-path bit-identity, chunked-prefill
 * semantics, the preemption accounting invariant, and the
 * priority-class trace-CSV round-trip.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sched/batcher.hh"
#include "sched/policy.hh"
#include "sim/engine.hh"
#include "sim/presets.hh"
#include "workload/trace.hh"

namespace duplex
{
namespace
{

std::vector<Request>
makeRequests(int n, std::int64_t lin, std::int64_t lout,
             PicoSec arrival_step = 0)
{
    std::vector<Request> reqs;
    for (int i = 0; i < n; ++i) {
        Request r;
        r.id = i;
        r.inputLen = lin;
        r.outputLen = lout;
        r.arrival = arrival_step * i;
        reqs.push_back(r);
    }
    return reqs;
}

TEST(PolicyRegistry, RoundTripsEveryStockPolicy)
{
    const std::vector<std::string> ids =
        registeredSchedulingPolicies();
    ASSERT_GE(ids.size(), 3u);
    for (const std::string &id : ids) {
        EXPECT_TRUE(
            SchedulingPolicyRegistry::instance().contains(id));
        const auto policy = makeSchedulingPolicy(id);
        ASSERT_NE(policy, nullptr) << id;
        EXPECT_EQ(policy->name(), id);
        EXPECT_FALSE(policy->describe().empty()) << id;
        EXPECT_FALSE(SchedulingPolicyRegistry::instance()
                         .summary(id)
                         .empty())
            << id;
    }
}

TEST(PolicyRegistry, UnknownPolicyIsFatal)
{
    EXPECT_EXIT({ makeSchedulingPolicy("no-such-policy"); },
                ::testing::ExitedWithCode(1),
                "unknown policy 'no-such-policy'");
}

TEST(Policy, TtftProtectWidensPrefillCapUnderBacklog)
{
    const auto policy = makeSchedulingPolicy("ttft-protect");
    SchedSnapshot snap;
    snap.maxBatch = 8;
    snap.maxPrefillsPerStage = 2;
    snap.queuedCount = 1; // no backlog: the normal cap holds
    EXPECT_EQ(policy->prefillBudget(snap), 2);
    snap.queuedCount = 5; // backlog: cap widens to the batch
    EXPECT_EQ(policy->prefillBudget(snap), 8);
}

/** Drive two batchers through identical stage timestamps and
 *  require bit-identical stage shapes and finished lifecycles. */
void
expectBatchersIdentical(ContinuousBatcher &a, ContinuousBatcher &b)
{
    PicoSec now = 0;
    int guard = 0;
    while (!a.allDone() || !b.allDone()) {
        ASSERT_LT(++guard, 10000);
        const StageShape sa = a.formStage(now);
        const StageShape sb = b.formStage(now);
        ASSERT_EQ(sa.prefillLengths, sb.prefillLengths);
        ASSERT_EQ(sa.agg.numPrefill, sb.agg.numPrefill);
        ASSERT_EQ(sa.agg.prefillSum, sb.agg.prefillSum);
        ASSERT_EQ(sa.agg.numDecode, sb.agg.numDecode);
        ASSERT_EQ(sa.agg.contextSum, sb.agg.contextSum);
        now += 1000;
        if (sa.totalTokens() > 0)
            a.completeStage(now);
        if (sb.totalTokens() > 0)
            b.completeStage(now);
        if (sa.totalTokens() == 0 && sb.totalTokens() == 0)
            break; // both idle forever: nothing left to compare
    }
    const std::vector<Request> &fa = a.finished();
    const std::vector<Request> &fb = b.finished();
    ASSERT_EQ(fa.size(), fb.size());
    for (std::size_t i = 0; i < fa.size(); ++i) {
        EXPECT_EQ(fa[i].id, fb[i].id);
        EXPECT_EQ(fa[i].firstToken, fb[i].firstToken);
        EXPECT_EQ(fa[i].finished, fb[i].finished);
        EXPECT_EQ(fa[i].tokenTimes, fb[i].tokenTimes);
    }
}

TEST(Policy, FcfsObjectMatchesLegacyFastPathClosedLoop)
{
    BatcherConfig cfg;
    cfg.maxBatch = 3;
    cfg.maxPrefillsPerStage = 2;
    const auto fcfs = makeSchedulingPolicy("fcfs");
    ContinuousBatcher legacy(cfg, makeRequests(8, 64, 5));
    ContinuousBatcher policied(cfg, makeRequests(8, 64, 5),
                               fcfs.get());
    expectBatchersIdentical(legacy, policied);
}

TEST(Policy, FcfsObjectMatchesLegacyFastPathOpenLoop)
{
    BatcherConfig cfg;
    cfg.maxBatch = 3;
    cfg.maxPrefillsPerStage = 2;
    cfg.closedLoop = false;
    const auto fcfs = makeSchedulingPolicy("fcfs");
    ContinuousBatcher legacy(cfg, makeRequests(8, 64, 5, 1500));
    ContinuousBatcher policied(cfg, makeRequests(8, 64, 5, 1500),
                               fcfs.get());
    expectBatchersIdentical(legacy, policied);
}

TEST(Policy, ChunkedPrefillSplitsPromptAcrossStages)
{
    BatcherConfig cfg;
    cfg.maxBatch = 1;
    cfg.prefillChunkTokens = 32;
    ContinuousBatcher b(cfg, makeRequests(1, 100, 2));
    // 100-token prompt in 32-token chunks: 32, 32, 32, 4 — and the
    // first token appears only when the last chunk completes.
    const std::int64_t spans[] = {32, 32, 32, 4};
    PicoSec now = 0;
    for (std::int64_t span : spans) {
        const StageShape s = b.formStage(now);
        ASSERT_EQ(s.prefillLengths.size(), 1u);
        EXPECT_EQ(s.prefillLengths[0], span);
        EXPECT_EQ(s.agg.numDecode, 0);
        now += 1000;
        b.completeStage(now);
        EXPECT_EQ(b.totalGenerated(), span == 4 ? 1 : 0);
    }
    // Decode proceeds normally after the prompt completes.
    const StageShape s = b.formStage(now);
    EXPECT_EQ(s.prefillLengths.size(), 0u);
    EXPECT_EQ(s.agg.numDecode, 1);
    b.completeStage(now + 1000);
    EXPECT_EQ(b.finished().size(), 1u);
    EXPECT_EQ(b.finished()[0].firstToken, 4000);
    EXPECT_EQ(b.finished()[0].tokenTimes.size(), 2u);
}

TEST(Policy, ChunkedPrefillImprovesWorstTokenGap)
{
    // Long prompts under open-loop arrivals: whole-prompt prefills
    // stall running decodes, chunking bounds the stall. The worst
    // token gap must improve (the bench_policies effect, pinned
    // small here).
    SimConfig base;
    base.systemName = "gpu";
    base.model = mixtralConfig();
    base.maxBatch = 4;
    base.workload.meanInputLen = 2048;
    base.workload.meanOutputLen = 16;
    base.workload.qps = 4.0;
    base.numRequests = 24;
    base.warmupRequests = 0;
    base.maxStages = 100000;

    SimConfig chunked = base;
    chunked.prefillChunkTokens = 256;

    const SimResult whole = SimulationEngine(base).run();
    const SimResult split = SimulationEngine(chunked).run();
    ASSERT_GT(whole.metrics.tbtMs.count(), 0u);
    ASSERT_GT(split.metrics.tbtMs.count(), 0u);
    EXPECT_LT(split.metrics.tbtMs.max(),
              whole.metrics.tbtMs.max());
    // Same requests retire either way; chunking is a schedule
    // change, not an admission-control change.
    EXPECT_EQ(split.metrics.t2ftMs.count(),
              whole.metrics.t2ftMs.count());
}

TEST(Policy, PreemptionAccountingInvariantHolds)
{
    // Two class-0 decodes fill the batch; a class-1 arrival must
    // evict one (KV-aware victim selection), the victim restarts
    // from prefill, and everything still drains:
    // admissions == retirements + preemptions.
    BatcherConfig cfg;
    cfg.maxBatch = 2;
    cfg.closedLoop = false;
    const auto priority = makeSchedulingPolicy("priority");
    std::vector<Request> reqs = makeRequests(2, 16, 8);
    Request high;
    high.id = 2;
    high.inputLen = 16;
    high.outputLen = 8;
    high.arrival = 500;
    high.priorityClass = 1;
    reqs.push_back(high);
    ContinuousBatcher b(cfg, std::move(reqs), priority.get());

    PicoSec now = 0;
    int guard = 0;
    while (!b.allDone()) {
        ASSERT_LT(++guard, 1000);
        const StageShape s = b.formStage(now);
        now += 1000;
        if (s.totalTokens() > 0)
            b.completeStage(now);
    }
    EXPECT_EQ(b.preemptions(), 1);
    EXPECT_GT(b.preemptedTokens(), 0);
    ASSERT_EQ(b.finished().size(), 3u);
    EXPECT_EQ(b.admissions(),
              static_cast<std::int64_t>(b.finished().size()) +
                  b.preemptions());
    int victims_restarted = 0;
    for (const Request &r : b.finished()) {
        EXPECT_EQ(r.generated, r.outputLen);
        if (r.retries == 1) {
            ++victims_restarted;
            EXPECT_EQ(r.priorityClass, 0);
        }
    }
    EXPECT_EQ(victims_restarted, 1);
}

TEST(PolicyTrace, PriorityClassRoundTrips)
{
    std::vector<Request> original = makeRequests(3, 128, 32, 1000);
    original[1].priorityClass = 1;
    original[2].priorityClass = 2;

    std::ostringstream out;
    writeTrace(out, original);
    // The format is positional: a priority column forces the
    // session column, written as -1 placeholders here.
    EXPECT_NE(out.str().find(",session_id,priority_class"),
              std::string::npos);

    std::istringstream in(out.str());
    const std::vector<Request> parsed = parseTrace(in);
    ASSERT_EQ(parsed.size(), original.size());
    for (std::size_t i = 0; i < parsed.size(); ++i) {
        EXPECT_EQ(parsed[i].priorityClass,
                  original[i].priorityClass);
        EXPECT_EQ(parsed[i].sessionId, -1);
        EXPECT_EQ(parsed[i].inputLen, original[i].inputLen);
    }
}

TEST(PolicyTrace, LegacyColumnCountsStayValid)
{
    // Three- and four-column traces predate priority classes and
    // must parse with priorityClass = 0.
    std::istringstream in("0.0,512,256\n"
                          "0.5,1024,128,3\n"
                          "1.0,64,16,-1,2\n");
    const std::vector<Request> reqs = parseTrace(in);
    ASSERT_EQ(reqs.size(), 3u);
    EXPECT_EQ(reqs[0].priorityClass, 0);
    EXPECT_EQ(reqs[0].sessionId, -1);
    EXPECT_EQ(reqs[1].priorityClass, 0);
    EXPECT_EQ(reqs[1].sessionId, 3);
    EXPECT_EQ(reqs[2].priorityClass, 2);
    EXPECT_EQ(reqs[2].sessionId, -1);
}

TEST(PolicyTrace, NegativePriorityClassIsFatal)
{
    std::istringstream in("0.0,512,256,-1,-2\n");
    EXPECT_EXIT({ parseTrace(in); },
                ::testing::ExitedWithCode(1),
                "priority_class must be >= 0");
}

TEST(PolicyTrace, TooManyColumnsIsFatal)
{
    std::istringstream in("0.0,512,256,-1,0,99\n");
    EXPECT_EXIT({ parseTrace(in); },
                ::testing::ExitedWithCode(1), "too many columns");
}

} // namespace
} // namespace duplex
