/**
 * @file
 * Serving-metric computation tests.
 */

#include <gtest/gtest.h>

#include "sched/metrics.hh"

namespace duplex
{
namespace
{

Request
makeFinished(PicoSec arrival, std::vector<PicoSec> token_times)
{
    Request r;
    r.arrival = arrival;
    r.firstToken = token_times.front();
    r.finished = token_times.back();
    r.generated = static_cast<std::int64_t>(token_times.size());
    r.outputLen = r.generated;
    r.tokenTimes = std::move(token_times);
    return r;
}

TEST(Metrics, T2ftAndE2e)
{
    std::vector<Request> reqs{
        makeFinished(0, {2 * kPsPerMs, 3 * kPsPerMs, 4 * kPsPerMs}),
    };
    const ServingMetrics m = collectMetrics(reqs);
    EXPECT_DOUBLE_EQ(m.t2ftMs.median(), 2.0);
    EXPECT_DOUBLE_EQ(m.e2eMs.median(), 4.0);
}

TEST(Metrics, TbtFromTokenGaps)
{
    std::vector<Request> reqs{
        makeFinished(0, {kPsPerMs, 3 * kPsPerMs, 6 * kPsPerMs}),
    };
    const ServingMetrics m = collectMetrics(reqs);
    // Gaps: 2 ms and 3 ms.
    EXPECT_EQ(m.tbtMs.count(), 2u);
    EXPECT_DOUBLE_EQ(m.tbtMs.min(), 2.0);
    EXPECT_DOUBLE_EQ(m.tbtMs.max(), 3.0);
}

TEST(Metrics, WarmupSkipped)
{
    std::vector<Request> reqs{
        makeFinished(0, {100 * kPsPerMs}), // warm-up outlier
        makeFinished(0, {2 * kPsPerMs}),
    };
    const ServingMetrics m = collectMetrics(reqs, 1);
    EXPECT_EQ(m.t2ftMs.count(), 1u);
    EXPECT_DOUBLE_EQ(m.t2ftMs.median(), 2.0);
}

TEST(Metrics, ThroughputFromTokensAndElapsed)
{
    ServingMetrics m;
    m.totalTokens = 5000;
    m.elapsed = kPsPerSec; // one second
    EXPECT_DOUBLE_EQ(m.throughputTokensPerSec(), 5000.0);
}

TEST(Metrics, DecodingOnlyRatio)
{
    ServingMetrics m;
    m.decodingOnlyStages = 98;
    m.mixedStages = 2;
    EXPECT_NEAR(m.decodingOnlyRatio(), 0.98, 1e-12);
}

TEST(Metrics, EmptyIsSafe)
{
    const ServingMetrics m = collectMetrics({});
    EXPECT_EQ(m.tbtMs.count(), 0u);
    EXPECT_DOUBLE_EQ(m.throughputTokensPerSec(), 0.0);
    EXPECT_DOUBLE_EQ(m.decodingOnlyRatio(), 0.0);
}

TEST(Metrics, SingleTokenRequestHasNoTbt)
{
    std::vector<Request> reqs{makeFinished(0, {kPsPerMs})};
    const ServingMetrics m = collectMetrics(reqs);
    EXPECT_EQ(m.tbtMs.count(), 0u);
    EXPECT_EQ(m.t2ftMs.count(), 1u);
}

} // namespace
} // namespace duplex
