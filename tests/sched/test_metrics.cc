/**
 * @file
 * Serving-metric computation tests.
 */

#include <gtest/gtest.h>

#include "sched/metrics.hh"

namespace duplex
{
namespace
{

Request
makeFinished(PicoSec arrival, std::vector<PicoSec> token_times)
{
    Request r;
    r.arrival = arrival;
    r.firstToken = token_times.front();
    r.finished = token_times.back();
    r.generated = static_cast<std::int64_t>(token_times.size());
    r.outputLen = r.generated;
    r.tokenTimes = std::move(token_times);
    return r;
}

TEST(Metrics, T2ftAndE2e)
{
    std::vector<Request> reqs{
        makeFinished(0, {2 * kPsPerMs, 3 * kPsPerMs, 4 * kPsPerMs}),
    };
    const ServingMetrics m = collectMetrics(reqs);
    EXPECT_DOUBLE_EQ(m.t2ftMs.median(), 2.0);
    EXPECT_DOUBLE_EQ(m.e2eMs.median(), 4.0);
}

TEST(Metrics, TbtFromTokenGaps)
{
    std::vector<Request> reqs{
        makeFinished(0, {kPsPerMs, 3 * kPsPerMs, 6 * kPsPerMs}),
    };
    const ServingMetrics m = collectMetrics(reqs);
    // Gaps: 2 ms and 3 ms.
    EXPECT_EQ(m.tbtMs.count(), 2u);
    EXPECT_DOUBLE_EQ(m.tbtMs.min(), 2.0);
    EXPECT_DOUBLE_EQ(m.tbtMs.max(), 3.0);
}

TEST(Metrics, WarmupSkipped)
{
    std::vector<Request> reqs{
        makeFinished(0, {100 * kPsPerMs}), // warm-up outlier
        makeFinished(0, {2 * kPsPerMs}),
    };
    const ServingMetrics m = collectMetrics(reqs, 1);
    EXPECT_EQ(m.t2ftMs.count(), 1u);
    EXPECT_DOUBLE_EQ(m.t2ftMs.median(), 2.0);
}

TEST(Metrics, ThroughputFromTokensAndElapsed)
{
    ServingMetrics m;
    m.totalTokens = 5000;
    m.elapsed = kPsPerSec; // one second
    EXPECT_DOUBLE_EQ(m.throughputTokensPerSec(), 5000.0);
}

TEST(Metrics, DecodingOnlyRatio)
{
    ServingMetrics m;
    m.decodingOnlyStages = 98;
    m.mixedStages = 2;
    EXPECT_NEAR(m.decodingOnlyRatio(), 0.98, 1e-12);
}

TEST(Metrics, EmptyIsSafe)
{
    const ServingMetrics m = collectMetrics({});
    EXPECT_EQ(m.tbtMs.count(), 0u);
    EXPECT_DOUBLE_EQ(m.throughputTokensPerSec(), 0.0);
    EXPECT_DOUBLE_EQ(m.decodingOnlyRatio(), 0.0);
}

TEST(Metrics, SingleTokenRequestHasNoTbt)
{
    std::vector<Request> reqs{makeFinished(0, {kPsPerMs})};
    const ServingMetrics m = collectMetrics(reqs);
    EXPECT_EQ(m.tbtMs.count(), 0u);
    EXPECT_EQ(m.t2ftMs.count(), 1u);
}

TEST(Metrics, SloAttainmentFractions)
{
    std::vector<Request> reqs{
        makeFinished(0, {kPsPerMs, 3 * kPsPerMs}),      // T2FT 1 ms
        makeFinished(0, {10 * kPsPerMs, 12 * kPsPerMs}), // T2FT 10 ms
    };
    const ServingMetrics m = collectMetrics(reqs);
    // TBT gaps are 2 ms each; T2FT samples are 1 and 10 ms.
    EXPECT_DOUBLE_EQ(m.t2ftAttainment({5.0, 1.0}), 0.5);
    EXPECT_DOUBLE_EQ(m.t2ftAttainment({10.0, 1.0}), 1.0);
    EXPECT_DOUBLE_EQ(m.tbtAttainment({1.0, 2.0}), 1.0);
    EXPECT_DOUBLE_EQ(m.tbtAttainment({1.0, 1.9}), 0.0);
}

TEST(Metrics, SloAttainmentVacuouslyMetWhenEmpty)
{
    const ServingMetrics m = collectMetrics({});
    EXPECT_DOUBLE_EQ(m.t2ftAttainment({}), 1.0);
    EXPECT_DOUBLE_EQ(m.tbtAttainment({}), 1.0);
}

TEST(MetricsAccumulatorTest, StreamingMatchesCollectMetrics)
{
    // Ingesting at retirement must reproduce the retained-vector
    // walk bit-for-bit, including the float-summation order.
    std::vector<Request> reqs{
        makeFinished(0, {2 * kPsPerMs, 5 * kPsPerMs, 6 * kPsPerMs}),
        makeFinished(kPsPerMs, {3 * kPsPerMs, 9 * kPsPerMs}),
        makeFinished(0, {7 * kPsPerMs}),
    };
    for (std::size_t skip : {0u, 1u, 2u, 3u, 7u}) {
        const ServingMetrics retained = collectMetrics(reqs, skip);
        MetricsAccumulator acc(skip);
        for (const Request &r : reqs)
            acc.ingest(r);
        ServingMetrics streamed = acc.takeMetrics();
        EXPECT_EQ(streamed.t2ftMs.count(), retained.t2ftMs.count());
        EXPECT_EQ(streamed.t2ftMs.sum(), retained.t2ftMs.sum());
        EXPECT_EQ(streamed.e2eMs.sum(), retained.e2eMs.sum());
        EXPECT_EQ(streamed.tbtMs.count(), retained.tbtMs.count());
        EXPECT_EQ(streamed.tbtMs.percentile(90),
                  retained.tbtMs.percentile(90));
    }
}

TEST(MetricsAccumulatorTest, WorstGapPerRequest)
{
    MetricsAccumulator acc(0);
    // Gaps 3 ms and 1 ms: worst is 3.
    acc.ingest(makeFinished(
        0, {kPsPerMs, 4 * kPsPerMs, 5 * kPsPerMs}));
    // Single-token request: no gap sample.
    acc.ingest(makeFinished(0, {2 * kPsPerMs}));
    EXPECT_EQ(acc.ingested(), 2u);
    EXPECT_EQ(acc.worstGapMs().count(), 1u);
    EXPECT_DOUBLE_EQ(acc.worstGapMs().max(), 3.0);
}

TEST(MetricsAccumulatorTest, BoundedModeUsesHistograms)
{
    MetricsAccumulator acc(1, BoundedSpec{100.0, 100});
    acc.ingest(makeFinished(0, {50 * kPsPerMs})); // skipped warm-up
    acc.ingest(makeFinished(0, {2 * kPsPerMs, 4 * kPsPerMs}));
    ASSERT_TRUE(acc.bounded());
    // Exact-mode stats stay empty in bounded mode.
    const ServingMetrics m = acc.takeMetrics();
    EXPECT_EQ(m.t2ftMs.count(), 0u);
    const BoundedLatencyMetrics h = acc.takeBounded();
    EXPECT_EQ(h.t2ftMs.count(), 1u); // warm-up excluded
    EXPECT_DOUBLE_EQ(h.t2ftMs.max(), 2.0);
    EXPECT_EQ(h.tbtMs.count(), 1u);
    EXPECT_EQ(h.worstGapMs.count(), 1u);
    EXPECT_DOUBLE_EQ(h.worstGapMs.max(), 2.0);
}

TEST(WarmupWindowTest, ThroughputOverPostWarmupWindow)
{
    WarmupWindow w(2);
    w.onStageCompleted(10 * kPsPerMs, 100); // ramp-up
    w.onStageCompleted(20 * kPsPerMs, 250); // window opens here
    w.onStageCompleted(30 * kPsPerMs, 400);
    EXPECT_EQ(w.stages(), 3);

    ServingMetrics m;
    w.finalize(m, 40 * kPsPerMs, 500);
    EXPECT_EQ(m.totalTokens, 250); // 500 - 250
    EXPECT_EQ(m.elapsed, 20 * kPsPerMs);
}

TEST(WarmupWindowTest, ShortRunFallsBackToWholeRun)
{
    WarmupWindow w(40);
    w.onStageCompleted(10 * kPsPerMs, 100);
    w.onStageCompleted(20 * kPsPerMs, 200);

    ServingMetrics m;
    w.finalize(m, 20 * kPsPerMs, 200);
    EXPECT_EQ(m.totalTokens, 200);
    EXPECT_EQ(m.elapsed, 20 * kPsPerMs);
}

TEST(WarmupWindowTest, RunEndingExactlyAtWarmupUsesWholeRun)
{
    // The window opens at stage N but only closes a measurement
    // when at least one post-warm-up stage ran.
    WarmupWindow w(2);
    w.onStageCompleted(10 * kPsPerMs, 100);
    w.onStageCompleted(20 * kPsPerMs, 250);

    ServingMetrics m;
    w.finalize(m, 20 * kPsPerMs, 250);
    EXPECT_EQ(m.totalTokens, 250);
    EXPECT_EQ(m.elapsed, 20 * kPsPerMs);
}

TEST(LatencySummaryTest, PullsTheStandardPercentiles)
{
    ServingMetrics m;
    for (int i = 1; i <= 100; ++i)
        m.tbtMs.add(static_cast<double>(i));
    m.t2ftMs.add(7.0);
    m.e2eMs.add(11.0);
    const LatencySummary s = summarizeLatency(m);
    EXPECT_DOUBLE_EQ(s.tbtP50, m.tbtMs.percentile(50));
    EXPECT_DOUBLE_EQ(s.tbtP90, m.tbtMs.percentile(90));
    EXPECT_DOUBLE_EQ(s.tbtP99, m.tbtMs.percentile(99));
    EXPECT_DOUBLE_EQ(s.t2ftP50, 7.0);
    EXPECT_DOUBLE_EQ(s.e2eP50, 11.0);
}

TEST(LatencySummaryTest, DefaultWarmupRequestsRule)
{
    EXPECT_EQ(defaultWarmupRequests(64), 32);
    EXPECT_EQ(defaultWarmupRequests(1), 0);
}

} // namespace
} // namespace duplex
