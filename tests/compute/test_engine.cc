/**
 * @file
 * Roofline operator-timer tests.
 */

#include <gtest/gtest.h>

#include "compute/engine.hh"
#include "compute/vector_unit.hh"

namespace duplex
{
namespace
{

EngineSpec
testEngine()
{
    EngineSpec e;
    e.name = "test";
    e.peakFlops = 100e12;
    e.computeEff = 1.0;
    e.memBps = 1e12;
    e.dispatchOverhead = 1000;
    return e;
}

TEST(OperatorTime, MemoryBoundUsesBandwidth)
{
    const EngineSpec e = testEngine();
    // 1 GB at 1 TB/s = 1 ms; negligible FLOPs.
    const PicoSec t = operatorTime(e, 1e6, 1'000'000'000ull);
    EXPECT_NEAR(static_cast<double>(t), 1e9, 1e6);
}

TEST(OperatorTime, ComputeBoundUsesFlops)
{
    const EngineSpec e = testEngine();
    // 1e12 FLOPs at 100 TFLOPS = 10 ms; negligible bytes.
    const PicoSec t = operatorTime(e, 1e12, 1024);
    EXPECT_NEAR(static_cast<double>(t), 1e10, 1e7);
}

TEST(OperatorTime, RidgePoint)
{
    const EngineSpec e = testEngine();
    EXPECT_DOUBLE_EQ(e.ridgeOpPerByte(), 100.0);
    // At exactly the ridge the two legs agree.
    const Bytes bytes = 1'000'000;
    const Flops flops = 100.0 * static_cast<double>(bytes);
    const double mem_sec = static_cast<double>(bytes) / e.memBps;
    const PicoSec t = operatorTimeNoOverhead(e, flops, bytes);
    EXPECT_NEAR(static_cast<double>(t), mem_sec * 1e12, 10.0);
}

TEST(OperatorTime, ComputeEfficiencyScales)
{
    EngineSpec e = testEngine();
    const PicoSec full = operatorTimeNoOverhead(e, 1e15, 1);
    e.computeEff = 0.5;
    const PicoSec half = operatorTimeNoOverhead(e, 1e15, 1);
    EXPECT_NEAR(static_cast<double>(half),
                2.0 * static_cast<double>(full), 4.0);
}

TEST(OperatorTime, OverheadAdded)
{
    const EngineSpec e = testEngine();
    const PicoSec with = operatorTime(e, 1e9, 1024);
    const PicoSec without = operatorTimeNoOverhead(e, 1e9, 1024);
    EXPECT_EQ(with, without + e.dispatchOverhead);
}

TEST(OperatorTime, ZeroWorkIsFree)
{
    const EngineSpec e = testEngine();
    EXPECT_EQ(operatorTime(e, 0.0, 0), 0);
}

TEST(OperatorTime, TinyWorkNonZero)
{
    const EngineSpec e = testEngine();
    EXPECT_GE(operatorTimeNoOverhead(e, 1.0, 1), 1);
}

TEST(OperatorTime, MonotoneInBytes)
{
    const EngineSpec e = testEngine();
    PicoSec prev = 0;
    for (Bytes b = 1024; b <= 1024 * 1024; b *= 4) {
        const PicoSec t = operatorTimeNoOverhead(e, 0.0, b);
        EXPECT_GE(t, prev);
        prev = t;
    }
}

TEST(GemmTime, UsesShapeTraffic)
{
    const EngineSpec e = testEngine();
    GemmShape g{8, 4096, 4096};
    const PicoSec direct =
        operatorTime(e, g.flops(), g.trafficBytes());
    EXPECT_EQ(gemmTime(e, g), direct);
}

TEST(VectorUnit, MemoryBoundWhenPipeFast)
{
    VectorUnitSpec v;
    v.elemsPerSec = 1e15; // effectively infinite pipe
    EngineSpec mem = testEngine();
    const double elems = 1e9;
    const PicoSec t = vectorOpTime(v, mem, elems);
    const double expect_sec = elems * v.bytesPerElem / mem.memBps;
    EXPECT_NEAR(static_cast<double>(t), expect_sec * 1e12, 1e6);
}

TEST(VectorUnit, PipeBoundWhenSlow)
{
    VectorUnitSpec v;
    v.elemsPerSec = 1e9;
    EngineSpec mem = testEngine();
    const PicoSec t = vectorOpTime(v, mem, 1e9);
    EXPECT_NEAR(static_cast<double>(t), 1e12, 1e9);
}

TEST(VectorUnit, AccountingHelpers)
{
    VectorUnitSpec v;
    v.elemsPerSec = 1e9;
    EXPECT_DOUBLE_EQ(vectorOpFlops(v, 100.0), 500.0);
    EXPECT_EQ(vectorOpBytes(v, 100.0), 400u);
}

} // namespace
} // namespace duplex
