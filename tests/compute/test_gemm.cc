/**
 * @file
 * GEMM shape arithmetic tests, including the Op/B facts from
 * Section III-A that motivate the whole design.
 */

#include <gtest/gtest.h>

#include "compute/gemm.hh"

namespace duplex
{
namespace
{

TEST(GemmShape, Flops)
{
    GemmShape g{2, 3, 4};
    EXPECT_DOUBLE_EQ(g.flops(), 2.0 * 2 * 3 * 4);
}

TEST(GemmShape, OperandBytes)
{
    GemmShape g{2, 3, 4};
    EXPECT_EQ(g.weightBytes(), 3u * 4 * 2);
    EXPECT_EQ(g.inputBytes(), 2u * 3 * 2);
    EXPECT_EQ(g.outputBytes(), 2u * 4 * 2);
    EXPECT_EQ(g.trafficBytes(),
              g.weightBytes() + g.inputBytes() + g.outputBytes());
}

TEST(GemmShape, GemvOpbJustUnderOne)
{
    // A weight-dominated GEMV has Op/B slightly below 1.
    GemmShape g{1, 4096, 14336};
    EXPECT_GT(g.opPerByte(), 0.9);
    EXPECT_LT(g.opPerByte(), 1.0);
}

TEST(GemmShape, OpbGrowsWithTokens)
{
    // Op/B of an FC layer is roughly the token count m (paper:
    // "the Op/B of the MoE layer is at least 1" and grows with
    // batching).
    double prev = 0.0;
    for (std::int64_t m : {1, 2, 4, 8, 16, 32}) {
        GemmShape g{m, 4096, 14336};
        EXPECT_GT(g.opPerByte(), prev);
        prev = g.opPerByte();
        EXPECT_LT(g.opPerByte(), static_cast<double>(m));
        EXPECT_GT(g.opPerByte(), 0.8 * static_cast<double>(m));
    }
}

TEST(GemmShape, LargeMBecomesComputeRich)
{
    GemmShape g{4096, 4096, 4096};
    // Balanced square GEMM: Op/B = 2*n/3 per byte / ... just check
    // it is far into the compute-bound region.
    EXPECT_GT(g.opPerByte(), 500.0);
}

TEST(GemmShape, ZeroShapes)
{
    GemmShape g{0, 4096, 4096};
    EXPECT_DOUBLE_EQ(g.flops(), 0.0);
    EXPECT_EQ(g.inputBytes(), 0u);
    // Weight bytes remain (the matrix exists even with no tokens).
    EXPECT_GT(g.weightBytes(), 0u);
}

TEST(GemmShape, Fig8WeightMatrix)
{
    // Fig. 8 uses a (16384 x 4096) FP16 weight: 128 MiB.
    GemmShape g{1, 16384, 4096};
    EXPECT_EQ(g.weightBytes(), 134217728u);
}

/** Op/B of the paper's models' expert FFN GEMV. */
class ExpertOpbSweep
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(ExpertOpbSweep, TracksTokenCount)
{
    const auto [hidden, interm] = GetParam();
    for (std::int64_t m : {1, 4, 16, 64}) {
        GemmShape g{m, hidden, interm};
        EXPECT_NEAR(g.opPerByte(), static_cast<double>(m),
                    0.25 * static_cast<double>(m));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Models, ExpertOpbSweep,
    ::testing::Values(std::pair{4096, 14336},   // Mixtral
                      std::pair{4096, 16384},   // GLaM
                      std::pair{6144, 32768})); // Grok1

} // namespace
} // namespace duplex
