/**
 * @file
 * System-registry tests: every registered system builds and honors
 * the ServingSystem contract, legacy SystemKind values map onto
 * registered ids, and user systems can be added at runtime.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "sim/engine.hh"
#include "sim/registry.hh"

namespace duplex
{
namespace
{

StageShape
decodeStage(int batch, std::int64_t ctx)
{
    StageShape s;
    for (int i = 0; i < batch; ++i)
        s.decodeContexts.push_back(ctx);
    return s;
}

TEST(Registry, ListsEveryPaperSystem)
{
    const std::vector<std::string> expected = {
        "gpu",          "gpu-2x",       "duplex",
        "duplex-pe",    "duplex-pe-et", "bank-pim",
        "bankgroup-pim", "hetero",      "duplex-split"};
    const std::vector<std::string> ids = registeredSystems();
    for (const std::string &id : expected) {
        EXPECT_TRUE(SystemRegistry::instance().contains(id))
            << "missing system: " << id;
    }
    EXPECT_GE(ids.size(), expected.size());
}

TEST(Registry, IdsAreSorted)
{
    // Enumeration is lexicographically sorted, not registration
    // order: sweep and bench tables built from ids() must be
    // byte-stable across libstdc++/libc++ (the CI compiler matrix
    // diffs their output).
    const std::vector<std::string> ids = registeredSystems();
    EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
}

TEST(Registry, RoundTripOverEveryRegisteredSystem)
{
    // Every system builds for Mixtral and honors the full
    // ServingSystem contract through the same interface.
    const SystemRegistry &registry = SystemRegistry::instance();
    std::set<std::string> names;
    for (const std::string &id : registry.ids()) {
        SCOPED_TRACE(id);
        const std::unique_ptr<ServingSystem> system =
            makeSystem(id, mixtralConfig());
        ASSERT_NE(system, nullptr);
        EXPECT_EQ(system->name(), registry.displayName(id));
        EXPECT_FALSE(system->describe().empty());
        EXPECT_FALSE(registry.summary(id).empty());
        EXPECT_GT(system->maxKvTokens(), 0);
        const StageResult r =
            system->executeStage(decodeStage(8, 512));
        EXPECT_GT(r.time, 0);
        names.insert(system->name());
    }
    // Display names are distinct across the registry.
    EXPECT_EQ(names.size(), registry.ids().size());
}

TEST(Registry, SeedReachesTheSystem)
{
    const std::unique_ptr<ServingSystem> a =
        makeSystem("duplex-pe-et", glamConfig(), {1});
    const std::unique_ptr<ServingSystem> b =
        makeSystem("duplex-pe-et", glamConfig(), {2});
    const StageShape s = decodeStage(64, 1024);
    // Different gate draws almost surely differ in time.
    EXPECT_NE(a->executeStage(s).time, b->executeStage(s).time);
}

TEST(Registry, LegacyKindsMapOntoRegisteredIds)
{
    for (SystemKind kind :
         {SystemKind::Gpu, SystemKind::Gpu2x, SystemKind::Duplex,
          SystemKind::DuplexPE, SystemKind::DuplexPEET,
          SystemKind::BankPim, SystemKind::BankGroupPim,
          SystemKind::Hetero, SystemKind::DuplexSplit}) {
        const std::string id = systemId(kind);
        EXPECT_TRUE(SystemRegistry::instance().contains(id));
        EXPECT_EQ(SystemRegistry::instance().displayName(id),
                  systemName(kind));
    }
}

TEST(Registry, UnknownSystemIsFatal)
{
    EXPECT_EXIT(
        { makeSystem("no-such-system", mixtralConfig()); },
        ::testing::ExitedWithCode(1), "unknown system");
}

TEST(Registry, UserSystemsPlugIn)
{
    // A new serving system is one registration away — no enum
    // edits, no new entry points.
    if (!SystemRegistry::instance().contains("test-custom")) {
        registerServingSystem(
            "test-custom", "TestCustom",
            "GPU preset under a custom id (test only)",
            [](const ModelConfig &model,
               const SystemOptions &opts) {
                return std::make_unique<ClusterSystem>(
                    "TestCustom",
                    makeClusterConfig(SystemKind::Gpu, model,
                                      opts.seed));
            });
    }
    SimConfig c;
    c.systemName = "test-custom";
    c.model = mixtralConfig();
    c.maxBatch = 8;
    c.workload.meanInputLen = 128;
    c.workload.meanOutputLen = 32;
    c.numRequests = 16;
    c.warmupRequests = 2;
    c.maxStages = 400;
    const SimResult r = SimulationEngine(c).run();
    EXPECT_GT(r.metrics.totalTokens, 0);
    EXPECT_GT(r.generatedTokens, 0);
}

TEST(Registry, DuplicateRegistrationIsFatal)
{
    EXPECT_EXIT(
        {
            registerServingSystem(
                "gpu", "GPU", "duplicate",
                [](const ModelConfig &model,
                   const SystemOptions &opts) {
                    return std::make_unique<ClusterSystem>(
                        "GPU", makeClusterConfig(SystemKind::Gpu,
                                                 model,
                                                 opts.seed));
                });
        },
        ::testing::ExitedWithCode(1), "duplicate system id");
}

} // namespace
} // namespace duplex
