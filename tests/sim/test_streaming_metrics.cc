/**
 * @file
 * Retirement-streaming property tests: the drainFinished() +
 * MetricsAccumulator path (MetricsMode::Streaming, the default)
 * must be bit-identical to the retained-vector collectMetrics path
 * (MetricsMode::Retained) on closed and open loops, for both the
 * engine's batcher loop and the split system's custom loop —
 * including the warm-up-request exclusion edge cases. Also covers
 * the Bounded histogram mode's contract: exact counts/extremes,
 * approximate percentiles, empty SampleStats.
 */

#include <gtest/gtest.h>

#include "sim/engine.hh"
#include "sim/observers.hh"

namespace duplex
{
namespace
{

SimConfig
baseConfig(const std::string &system)
{
    SimConfig c;
    c.systemName = system;
    c.model = mixtralConfig();
    c.maxBatch = 16;
    c.workload.meanInputLen = 256;
    c.workload.meanOutputLen = 64;
    c.numRequests = 48;
    c.warmupRequests = 8;
    c.maxStages = 20000;
    return c;
}

/** Bit-exact comparison of two sample accumulators. */
void
expectSameSamples(const SampleStats &a, const SampleStats &b,
                  const char *what)
{
    EXPECT_EQ(a.count(), b.count()) << what;
    EXPECT_EQ(a.sum(), b.sum()) << what;    // same fp add order
    EXPECT_EQ(a.mean(), b.mean()) << what;
    EXPECT_EQ(a.min(), b.min()) << what;
    EXPECT_EQ(a.max(), b.max()) << what;
    for (double p : {50.0, 90.0, 99.0})
        EXPECT_EQ(a.percentile(p), b.percentile(p))
            << what << " p" << p;
}

void
expectStreamingMatchesRetained(SimConfig config)
{
    config.metricsMode = MetricsMode::Streaming;
    const SimResult streaming = SimulationEngine(config).run();
    config.metricsMode = MetricsMode::Retained;
    const SimResult retained = SimulationEngine(config).run();

    EXPECT_EQ(streaming.metrics.elapsed, retained.metrics.elapsed);
    EXPECT_EQ(streaming.metrics.totalTokens,
              retained.metrics.totalTokens);
    EXPECT_EQ(streaming.generatedTokens, retained.generatedTokens);
    EXPECT_EQ(streaming.peakBatch, retained.peakBatch);
    EXPECT_EQ(streaming.metrics.decodingOnlyStages,
              retained.metrics.decodingOnlyStages);
    EXPECT_EQ(streaming.metrics.mixedStages,
              retained.metrics.mixedStages);
    EXPECT_EQ(streaming.totals.time, retained.totals.time);
    EXPECT_EQ(streaming.totals.totalEnergyJ(),
              retained.totals.totalEnergyJ());
    expectSameSamples(streaming.metrics.tbtMs,
                      retained.metrics.tbtMs, "tbt");
    expectSameSamples(streaming.metrics.t2ftMs,
                      retained.metrics.t2ftMs, "t2ft");
    expectSameSamples(streaming.metrics.e2eMs,
                      retained.metrics.e2eMs, "e2e");
}

TEST(StreamingMetrics, EngineClosedLoopMatchesRetained)
{
    expectStreamingMatchesRetained(baseConfig("gpu"));
}

TEST(StreamingMetrics, EngineOpenLoopMatchesRetained)
{
    SimConfig c = baseConfig("gpu");
    c.workload.qps = 4.0;
    expectStreamingMatchesRetained(c);
}

TEST(StreamingMetrics, SplitClosedLoopMatchesRetained)
{
    expectStreamingMatchesRetained(baseConfig("duplex-split"));
}

TEST(StreamingMetrics, SplitOpenLoopMatchesRetained)
{
    SimConfig c = baseConfig("duplex-split");
    c.workload.qps = 4.0;
    expectStreamingMatchesRetained(c);
}

TEST(StreamingMetrics, ContendedSplitMatchesRetained)
{
    // The contended link reorders decode admissions relative to
    // the free-copy model; retirement streaming must track it.
    SimConfig c = baseConfig("duplex-split-contended");
    c.workload.qps = 6.0;
    expectStreamingMatchesRetained(c);
}

TEST(StreamingMetrics, WarmupExclusionEdges)
{
    // skip == 0 (nothing excluded), skip beyond the finished count
    // (everything excluded), and skip == count (exact boundary).
    for (int warmup : {0, 48, 1000}) {
        SimConfig c = baseConfig("gpu");
        c.warmupRequests = warmup;
        expectStreamingMatchesRetained(c);
    }
    SimConfig c = baseConfig("gpu");
    c.warmupRequests = 1000; // > every retirement
    c.metricsMode = MetricsMode::Streaming;
    const SimResult r = SimulationEngine(c).run();
    EXPECT_EQ(r.metrics.t2ftMs.count(), 0u);
    EXPECT_EQ(r.metrics.tbtMs.count(), 0u);
    EXPECT_GT(r.generatedTokens, 0);
}

TEST(StreamingMetrics, ObserverStreamIdenticalAcrossModes)
{
    // The retirement order is part of the observer contract: both
    // modes must fire the same onRequestRetired sequence.
    class RetireLog : public SimObserver
    {
      public:
        std::vector<std::pair<int, PicoSec>> log;
        void onRequestRetired(const Request &r,
                              PicoSec now) override
        {
            log.push_back({r.id, now});
        }
    };

    SimConfig c = baseConfig("gpu");
    c.metricsMode = MetricsMode::Streaming;
    SimulationEngine streaming(c);
    RetireLog a;
    streaming.addObserver(&a);
    streaming.run();

    c.metricsMode = MetricsMode::Retained;
    SimulationEngine retained(c);
    RetireLog b;
    retained.addObserver(&b);
    retained.run();

    EXPECT_EQ(a.log, b.log);
    EXPECT_EQ(a.log.size(), 48u);
}

TEST(StreamingMetrics, BoundedModeApproximatesExact)
{
    SimConfig c = baseConfig("gpu");
    c.metricsMode = MetricsMode::Streaming;
    const SimResult exact = SimulationEngine(c).run();

    c.metricsMode = MetricsMode::Bounded;
    c.boundedLatency = {1000.0, 4096}; // sub-ms bins up to 1 s
    const SimResult bounded = SimulationEngine(c).run();

    // Throughput accounting is exact in every mode.
    EXPECT_EQ(bounded.metrics.elapsed, exact.metrics.elapsed);
    EXPECT_EQ(bounded.metrics.totalTokens,
              exact.metrics.totalTokens);
    // Latency SampleStats stay empty; the histograms carry the
    // distribution with exact counts/extremes and bin-resolution
    // percentiles.
    EXPECT_EQ(bounded.metrics.tbtMs.count(), 0u);
    ASSERT_NE(bounded.boundedLatency, nullptr);
    const BoundedLatencyMetrics &h = *bounded.boundedLatency;
    EXPECT_EQ(h.tbtMs.count(), exact.metrics.tbtMs.count());
    EXPECT_EQ(h.t2ftMs.count(), exact.metrics.t2ftMs.count());
    EXPECT_EQ(h.e2eMs.count(), exact.metrics.e2eMs.count());
    EXPECT_EQ(h.tbtMs.min(), exact.metrics.tbtMs.min());
    EXPECT_EQ(h.tbtMs.max(), exact.metrics.tbtMs.max());
    const double bin = 1000.0 / 4096;
    for (double p : {50.0, 90.0, 99.0})
        EXPECT_NEAR(h.tbtMs.percentile(p),
                    exact.metrics.tbtMs.percentile(p), bin)
            << "p" << p;
    // Worst-gap per request: one sample per multi-token request
    // (at most the 40 non-warm-up retirements).
    EXPECT_GT(h.worstGapMs.count(), 0u);
    EXPECT_LE(h.worstGapMs.count(), 40u);
    EXPECT_GE(h.worstGapMs.min(), exact.metrics.tbtMs.min());
    EXPECT_EQ(h.worstGapMs.max(), exact.metrics.tbtMs.max());
    // Streaming/retained runs carry no histograms.
    EXPECT_EQ(exact.boundedLatency, nullptr);
}

TEST(StreamingMetrics, SplitBoundedModeWorks)
{
    SimConfig c = baseConfig("duplex-split");
    c.metricsMode = MetricsMode::Bounded;
    const SimResult r = SimulationEngine(c).run();
    ASSERT_NE(r.boundedLatency, nullptr);
    EXPECT_EQ(r.boundedLatency->e2eMs.count(), 40u);
    EXPECT_GT(r.boundedLatency->tbtMs.percentile(50), 0.0);
    EXPECT_EQ(r.metrics.tbtMs.count(), 0u);
}

} // namespace
} // namespace duplex
