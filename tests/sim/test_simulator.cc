/**
 * @file
 * Integration tests: end-to-end serving simulations reproducing the
 * paper's qualitative claims, driven through the SimulationEngine
 * and the system registry.
 */

#include <gtest/gtest.h>

#include "sim/simulator.hh"

namespace duplex
{
namespace
{

SimConfig
baseConfig(const std::string &system, const ModelConfig &model,
           int batch, std::int64_t lin, std::int64_t lout)
{
    SimConfig c;
    c.systemName = system;
    c.model = model;
    c.maxBatch = batch;
    c.workload.meanInputLen = lin;
    c.workload.meanOutputLen = lout;
    c.numRequests = 3 * batch;
    c.warmupRequests = batch / 2;
    c.maxStages = 600;
    return c;
}

SimResult
run(const SimConfig &config)
{
    return SimulationEngine(config).run();
}

double
throughput(const std::string &system, const ModelConfig &model,
           int batch = 32, std::int64_t lin = 512,
           std::int64_t lout = 256)
{
    return run(baseConfig(system, model, batch, lin, lout))
        .metrics.throughputTokensPerSec();
}

TEST(Simulator, DuplexBeatsGpuOnMixtral)
{
    const double gpu = throughput("gpu", mixtralConfig());
    const double dup = throughput("duplex", mixtralConfig());
    EXPECT_GT(dup, 1.3 * gpu);
}

TEST(Simulator, CoProcessingAndEtMonotone)
{
    const ModelConfig m = mixtralConfig();
    const double base = throughput("duplex", m, 64);
    const double pe = throughput("duplex-pe", m, 64);
    const double et = throughput("duplex-pe-et", m, 64);
    EXPECT_GE(pe, 0.98 * base); // PE never hurts materially
    EXPECT_GT(et, pe);          // ET adds the big win (Fig. 11)
}

TEST(Simulator, DuplexBeats2xGpuOnGlamDecodeHeavy)
{
    // Fig. 12: the decoding-only stage dominates, where Duplex's
    // bandwidth beats 2xGPU's extra compute.
    const ModelConfig m = glamConfig();
    const double two = throughput("gpu-2x", m, 64, 512, 512);
    const double dup = throughput("duplex-pe-et", m, 64, 512, 512);
    EXPECT_GT(dup, two);
}

TEST(Simulator, BankPimWinsOnMhaDecode)
{
    // Fig. 14: OPT (MHA, Op/B ~ 1) favours Bank-PIM's bandwidth.
    const ModelConfig m = optConfig();
    const double dup = throughput("duplex", m, 32, 512, 512);
    const double bank = throughput("bank-pim", m, 32, 512, 512);
    EXPECT_GT(bank, dup);
}

TEST(Simulator, DuplexBeatsBankPimOnMoE)
{
    // Fig. 14: Mixtral at batch 64 pushes MoE Op/B past Bank-PIM's
    // compute.
    const ModelConfig m = mixtralConfig();
    const double dup = throughput("duplex-pe-et", m, 64, 256, 256);
    const double bank = throughput("bank-pim", m, 64, 256, 256);
    EXPECT_GT(dup, bank);
}

TEST(Simulator, EnergyPerTokenLowerOnDuplex)
{
    const ModelConfig m = mixtralConfig();
    const auto gpu = run(baseConfig("gpu", m, 32, 512, 256));
    const auto dup = run(baseConfig("duplex", m, 32, 512, 256));
    EXPECT_LT(dup.energyPerTokenJ(), 0.9 * gpu.energyPerTokenJ());
}

TEST(Simulator, LatencyMetricsPopulated)
{
    SimConfig c =
        baseConfig("duplex", mixtralConfig(), 8, 128, 32);
    c.maxStages = 5000;
    const SimResult r = run(c);
    EXPECT_GT(r.metrics.tbtMs.count(), 100u);
    EXPECT_GT(r.metrics.t2ftMs.median(), 0.0);
    EXPECT_GT(r.metrics.e2eMs.median(),
              r.metrics.t2ftMs.median());
    // TBT tail at least as large as the median.
    EXPECT_GE(r.metrics.tbtMs.percentile(99),
              r.metrics.tbtMs.percentile(50));
}

TEST(Simulator, DecodingOnlyStagesDominate)
{
    // Fig. 5(a): most stages are decoding-only.
    SimConfig c = baseConfig("gpu", mixtralConfig(), 32, 256, 256);
    c.maxStages = 2000;
    const SimResult r = run(c);
    EXPECT_GT(r.metrics.decodingOnlyRatio(), 0.80);
}

TEST(Simulator, DeterministicAcrossRuns)
{
    const SimConfig c =
        baseConfig("duplex-pe-et", mixtralConfig(), 16, 256, 64);
    const SimResult a = run(c);
    const SimResult b = run(c);
    EXPECT_EQ(a.metrics.elapsed, b.metrics.elapsed);
    EXPECT_EQ(a.metrics.totalTokens, b.metrics.totalTokens);
    EXPECT_DOUBLE_EQ(a.totals.totalEnergyJ(),
                     b.totals.totalEnergyJ());
}

TEST(Simulator, PeakBatchHonorsLimit)
{
    SimConfig c = baseConfig("gpu", mixtralConfig(), 16, 256, 64);
    const SimResult r = run(c);
    EXPECT_LE(r.peakBatch, 16);
    EXPECT_GT(r.peakBatch, 0);
}

TEST(Simulator, OpenLoopLowQpsHasIdleGaps)
{
    SimConfig c =
        baseConfig("duplex", mixtralConfig(), 32, 512, 64);
    c.workload.qps = 1.0; // far below capacity
    c.numRequests = 20;
    c.warmupRequests = 2;
    c.maxStages = 50000;
    const SimResult r = run(c);
    // All requests finish, and elapsed spans the arrival horizon.
    EXPECT_GT(r.metrics.totalTokens, 0);
    EXPECT_GT(psToSec(r.metrics.elapsed), 15.0);
}

TEST(Simulator, OverloadGrowsT2ft)
{
    // Fig. 13: past saturation, queueing delay explodes T2FT.
    SimConfig low = baseConfig("gpu", mixtralConfig(), 16, 2048,
                               256);
    low.workload.qps = 0.5;
    low.numRequests = 24;
    low.warmupRequests = 4;
    low.maxStages = 50000;
    SimConfig high = low;
    high.workload.qps = 50.0;
    const double t2ft_low = run(low).metrics.t2ftMs.median();
    const double t2ft_high = run(high).metrics.t2ftMs.median();
    EXPECT_GT(t2ft_high, 2.0 * t2ft_low);
}

TEST(Simulator, SplitSystemLowerThroughput)
{
    // Fig. 16: splitting prefill/decode nodes wastes capacity and
    // utilization vs unified Duplex.
    const ModelConfig m = mixtralConfig();
    SimConfig c = baseConfig("duplex-pe-et", m, 64, 1024, 256);
    c.maxStages = 3000;
    const double unified =
        run(c).metrics.throughputTokensPerSec();
    c.systemName = "duplex-split";
    const double split = run(c).metrics.throughputTokensPerSec();
    EXPECT_LT(split, unified);
}

TEST(Simulator, SplitSystemCompletesRequests)
{
    SimConfig c =
        baseConfig("duplex-split", mixtralConfig(), 16, 256, 64);
    c.maxStages = 20000;
    const SimResult r = run(c);
    EXPECT_GT(r.metrics.e2eMs.count(), 0u);
    EXPECT_GT(r.metrics.totalTokens, 0);
}

TEST(Simulator, HeteroRunsAndTrailsDuplex)
{
    const ModelConfig m = mixtralConfig();
    const double hetero = throughput("hetero", m, 32, 1024, 256);
    const double dup = throughput("duplex-pe", m, 32, 1024, 256);
    EXPECT_GT(hetero, 0.0);
    EXPECT_GT(dup, hetero);
}

TEST(Simulator, GrokTwoNodeRuns)
{
    const double thr =
        throughput("duplex-pe-et", grok1Config(), 32, 256, 128);
    EXPECT_GT(thr, 0.0);
}

TEST(Simulator, DeprecatedShimsMatchEngine)
{
    // The legacy free functions forward to the engine; old enum
    // configs keep working unchanged.
    SimConfig legacy;
    legacy.system = SystemKind::Duplex;
    legacy.model = mixtralConfig();
    legacy.maxBatch = 16;
    legacy.workload.meanInputLen = 256;
    legacy.workload.meanOutputLen = 64;
    legacy.numRequests = 32;
    legacy.warmupRequests = 4;
    legacy.maxStages = 400;
    const SimResult shim = runSimulation(legacy);

    SimConfig named = legacy;
    named.systemName = "duplex";
    const SimResult engine = SimulationEngine(named).run();
    EXPECT_EQ(shim.metrics.elapsed, engine.metrics.elapsed);
    EXPECT_EQ(shim.metrics.totalTokens,
              engine.metrics.totalTokens);
    EXPECT_DOUBLE_EQ(shim.totals.totalEnergyJ(),
                     engine.totals.totalEnergyJ());

    const SimResult split = runSplitSimulation(legacy);
    named.systemName = "duplex-split";
    const SimResult split_engine = SimulationEngine(named).run();
    EXPECT_EQ(split.metrics.elapsed,
              split_engine.metrics.elapsed);
    EXPECT_EQ(split.metrics.totalTokens,
              split_engine.metrics.totalTokens);
}

} // namespace
} // namespace duplex
