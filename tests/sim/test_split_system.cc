/**
 * @file
 * Disaggregated split-system tests: the golden pin that the
 * symmetric closed-loop configuration matches the pre-SplitSpec
 * SimResult bit-for-bit, open-loop arrival honoring, KV-transfer
 * contention serialization, the asymmetric registry variants, and
 * the per-group observability breakdown.
 */

#include <gtest/gtest.h>

#include <memory>

#include "sim/engine.hh"
#include "sim/observers.hh"
#include "sim/registry.hh"
#include "sim/split_system.hh"

namespace duplex
{
namespace
{

SimConfig
splitConfig(const std::string &system)
{
    SimConfig c;
    c.systemName = system;
    c.model = mixtralConfig();
    c.maxBatch = 16;
    c.workload.meanInputLen = 256;
    c.workload.meanOutputLen = 64;
    c.numRequests = 48;
    c.warmupRequests = 8;
    c.maxStages = 20000;
    return c;
}

/** Long prompts, short generations: KV migrations dominate. */
SimConfig
migrationHeavyConfig(const std::string &system)
{
    SimConfig c = splitConfig(system);
    c.workload.meanInputLen = 2048;
    c.workload.meanOutputLen = 32;
    c.numRequests = 32;
    c.warmupRequests = 4;
    c.maxStages = 50000;
    return c;
}

TEST(SplitSystem, GoldenSymmetricClosedLoopMatchesPreRefactor)
{
    // Values captured from the pre-SplitSpec implementation (the
    // verbatim seed loop) on this exact configuration; the
    // parameterized system's default symmetric closed-loop path
    // must reproduce them bit-for-bit (time/token integers) and to
    // rounding (energy).
    const SimResult r =
        SimulationEngine(splitConfig("duplex-split")).run();
    EXPECT_EQ(r.metrics.elapsed, 1087367856116LL);
    EXPECT_EQ(r.metrics.totalTokens, 3137);
    EXPECT_EQ(r.generatedTokens, 3137);
    EXPECT_EQ(r.peakBatch, 16);
    EXPECT_EQ(r.metrics.decodingOnlyStages, 246);
    EXPECT_EQ(r.metrics.mixedStages, 0);
    EXPECT_NEAR(r.totals.totalEnergyJ(), 604.60558978326549,
                1e-6 * 604.60558978326549);
    EXPECT_NEAR(r.metrics.tbtMs.percentile(50), 4.742778016,
                1e-6);
    EXPECT_NEAR(r.metrics.t2ftMs.percentile(50), 18.929559490,
                1e-6);
}

TEST(SplitSystem, OpenLoopHonorsQps)
{
    // qps > 0 must change retirement times: arrivals pace the
    // prefill group instead of the closed loop's immediate refill.
    const SimResult closed =
        SimulationEngine(splitConfig("duplex-split")).run();

    SimConfig open_cfg = splitConfig("duplex-split");
    open_cfg.workload.qps = 2.0; // far below capacity
    const SimResult open =
        SimulationEngine(open_cfg).run();

    // Every request still completes (the latency samples cover all
    // 48 requests minus the 8 warm-up skips). Token totals differ
    // slightly from the closed loop because the arrival draws shift
    // the generator's length stream — that is the point: qps > 0
    // changes the run.
    EXPECT_EQ(open.metrics.e2eMs.count(), 40u);
    EXPECT_NE(open.metrics.elapsed, closed.metrics.elapsed);
    // The run now spans the Poisson arrival horizon (~48 req / 2
    // qps = ~24 s), far beyond the closed-loop elapsed.
    EXPECT_GT(open.metrics.elapsed, 2 * closed.metrics.elapsed);
    EXPECT_GT(psToSec(open.metrics.elapsed), 15.0);
}

TEST(SplitSystem, OpenLoopFirstStageStartsAtFirstArrival)
{
    // The split loop shares the engine's idleAdvance rule: an idle
    // prefill group jumps exactly to the next arrival, no drift.
    SimConfig c = splitConfig("duplex-split");
    c.workload.qps = 2.0;

    RequestGenerator gen(c.workload);
    const std::vector<Request> requests = gen.take(c.numRequests);
    ASSERT_GT(requests.front().arrival, 0);

    class FirstStage : public SimObserver
    {
      public:
        PicoSec firstStart = -1;
        void onStage(const StageObservation &obs) override
        {
            if (firstStart < 0)
                firstStart = obs.start;
        }
    } first;

    SimulationEngine engine(c);
    engine.addObserver(&first);
    engine.run();
    EXPECT_EQ(first.firstStart, requests.front().arrival);
}

TEST(SplitSystem, ContendedKvTransfersSerializeAndDelayDecode)
{
    // Same workload, same groups; only the link model differs. The
    // contended system's prompt-KV migrations queue FIFO on the
    // NVLink, so the run can only get slower — and with prefill
    // bursts of multi-thousand-token prompts, strictly slower.
    const SimResult free_copy =
        SimulationEngine(migrationHeavyConfig("duplex-split"))
            .run();
    const SimResult contended =
        SimulationEngine(
            migrationHeavyConfig("duplex-split-contended"))
            .run();

    EXPECT_EQ(free_copy.metrics.totalTokens,
              contended.metrics.totalTokens);
    EXPECT_GT(contended.metrics.elapsed, free_copy.metrics.elapsed);
}

TEST(SplitSystem, ContentionMatchesLinkQueueArithmetic)
{
    // The admission delay of a burst of equal-size migrations must
    // follow the FIFO occupancy model exactly: transfer k of a
    // same-instant burst lands k * p2pTime later.
    const ModelConfig model = mixtralConfig();
    const Bytes kv_bytes = static_cast<Bytes>(1024) *
                           model.kvBytesPerToken();
    const LinkSpec nvlink = SystemTopology{}.intraNode;
    LinkQueue link(nvlink);
    const PicoSec each = p2pTime(kv_bytes, nvlink);
    EXPECT_EQ(link.transfer(0, kv_bytes), each);
    EXPECT_EQ(link.transfer(0, kv_bytes), 2 * each);
    EXPECT_EQ(link.transfer(0, kv_bytes), 3 * each);
    EXPECT_EQ(link.transfer(5 * each, kv_bytes), 6 * each);
}

TEST(SplitSystem, AsymmetricVariantsRegisteredAndEnumerable)
{
    const std::vector<std::string> ids = registeredSystems();
    for (const char *id :
         {"duplex-split-contended", "duplex-split-2p6d",
          "duplex-split-6p2d"}) {
        EXPECT_TRUE(SystemRegistry::instance().contains(id))
            << "missing split variant: " << id;
        EXPECT_NE(std::find(ids.begin(), ids.end(), id),
                  ids.end());
    }
}

TEST(SplitSystem, AsymmetricSplitRoundTrip)
{
    // Group sizes flow from the registry through SplitSpec into
    // the built system and its self-description.
    const std::unique_ptr<ServingSystem> light =
        makeSystem("duplex-split-2p6d", mixtralConfig());
    const auto *split_light =
        dynamic_cast<const SplitSystem *>(light.get());
    ASSERT_NE(split_light, nullptr);
    EXPECT_EQ(split_light->prefillDevices(), 2);
    EXPECT_EQ(split_light->decodeDevices(), 6);
    EXPECT_TRUE(split_light->spec().contendedKvTransfer);
    EXPECT_NE(light->describe().find("2 prefill + 6 decode"),
              std::string::npos);

    const std::unique_ptr<ServingSystem> heavy =
        makeSystem("duplex-split-6p2d", mixtralConfig());
    const auto *split_heavy =
        dynamic_cast<const SplitSystem *>(heavy.get());
    ASSERT_NE(split_heavy, nullptr);
    EXPECT_EQ(split_heavy->prefillDevices(), 6);
    EXPECT_EQ(split_heavy->decodeDevices(), 2);

    // KV capacity follows the decode group: six decode devices
    // hold more KV than the symmetric split's two; 6P2D's two match
    // the symmetric split exactly.
    const std::unique_ptr<ServingSystem> symmetric =
        makeSystem("duplex-split", mixtralConfig());
    EXPECT_GT(light->maxKvTokens(), symmetric->maxKvTokens());
    EXPECT_EQ(heavy->maxKvTokens(), symmetric->maxKvTokens());
}

TEST(SplitSystem, AsymmetricSplitCompletesRequests)
{
    SimConfig c = splitConfig("duplex-split-2p6d");
    const SimResult r = SimulationEngine(c).run();
    EXPECT_GT(r.metrics.e2eMs.count(), 0u);
    EXPECT_EQ(r.metrics.totalTokens, 3137); // 48 requests, all done
}

TEST(SplitSystem, InfeasibleDecodeGroupIsFatal)
{
    // One Mixtral decode device cannot hold the duplicated weights
    // plus any KV cache; the constructor must say so instead of
    // failing deep inside the admission loop.
    EXPECT_EXIT(
        {
            SplitSpec spec;
            spec.prefillDevices = 3;
            spec.decodeDevices = 1;
            SplitSystem bad("Bad-Split", mixtralConfig(), 7, spec);
        },
        ::testing::ExitedWithCode(1), "decode group of 1 device");
}

TEST(SplitSystem, InfeasiblePrefillGroupIsFatal)
{
    // The prefill group duplicates the weights too, and holds a
    // batch's prompt KV until it migrates — one Mixtral device
    // cannot, so a 1p3d-style spec must fail on the prefill side.
    EXPECT_EXIT(
        {
            SplitSpec spec;
            spec.prefillDevices = 1;
            spec.decodeDevices = 3;
            SplitSystem bad("Bad-Split", mixtralConfig(), 7, spec);
        },
        ::testing::ExitedWithCode(1), "prefill group of 1 device");
}

TEST(SplitSystem, MultiNodeModelsRejectedForExplicitSpecsToo)
{
    // The split models single-node systems only; an explicit
    // SplitSpec must not bypass the guard the default spec hits.
    EXPECT_EXIT(
        {
            SplitSpec spec;
            spec.prefillDevices = 8;
            spec.decodeDevices = 8;
            SplitSystem bad("Bad-Split", grok1Config(), 7, spec);
        },
        ::testing::ExitedWithCode(1), "single-node");
}

TEST(SplitSystem, GroupBreakdownCoversEveryStage)
{
    SimulationEngine engine(splitConfig("duplex-split"));
    GroupUtilization util;
    engine.addObserver(&util);
    const SimResult r = engine.run();

    ASSERT_EQ(util.groups().size(), 2u);
    const GroupUtilization::Group *prefill = util.find("prefill");
    const GroupUtilization::Group *decode = util.find("decode");
    ASSERT_NE(prefill, nullptr);
    ASSERT_NE(decode, nullptr);
    EXPECT_EQ(prefill->devices, 2);
    EXPECT_EQ(decode->devices, 2);
    EXPECT_GT(prefill->busyTime, 0);
    EXPECT_GT(decode->busyTime, 0);
    EXPECT_GT(prefill->stages, 0);
    EXPECT_GT(decode->stages, 0);
    // Every stage the loop reported belongs to exactly one group.
    EXPECT_EQ(prefill->stages + decode->stages,
              r.metrics.decodingOnlyStages + r.metrics.mixedStages);
    // Neither group can be busy longer than the run.
    EXPECT_LE(util.busyFraction("prefill"), 1.0);
    EXPECT_LE(util.busyFraction("decode"), 1.0);
    EXPECT_GT(util.busyFraction("decode"), 0.0);
}

TEST(SplitSystem, ContendedRunReportsLinkWait)
{
    // With bursts of long-prompt migrations on a contended link,
    // decode admission must stall on the NVLink at least once.
    SimulationEngine engine(
        migrationHeavyConfig("duplex-split-contended"));
    GroupUtilization util;
    engine.addObserver(&util);
    engine.run();
    const GroupUtilization::Group *decode = util.find("decode");
    ASSERT_NE(decode, nullptr);
    EXPECT_GT(decode->linkWaitTime, 0);
}

TEST(SplitSystem, HomogeneousSystemsReportNoGroups)
{
    SimConfig c = splitConfig("duplex");
    c.maxStages = 400;
    SimulationEngine engine(c);
    GroupUtilization util;
    engine.addObserver(&util);
    engine.run();
    EXPECT_TRUE(util.groups().empty());
    EXPECT_EQ(util.find("prefill"), nullptr);
    EXPECT_DOUBLE_EQ(util.busyFraction("decode"), 0.0);
}

} // namespace
} // namespace duplex
