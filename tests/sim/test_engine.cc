/**
 * @file
 * SimulationEngine tests: observer callback ordering and counts,
 * the shipped drop-in observers, and a golden test pinning the
 * engine's SimResult to the values the seed runSimulation produced
 * on the Mixtral preset (Gpu and Duplex systems).
 */

#include <gtest/gtest.h>

#include "sim/engine.hh"
#include "sim/observers.hh"
#include "sim/registry.hh"

namespace duplex
{
namespace
{

SimConfig
goldenConfig(const std::string &system)
{
    SimConfig c;
    c.systemName = system;
    c.model = mixtralConfig();
    c.maxBatch = 16;
    c.workload.meanInputLen = 256;
    c.workload.meanOutputLen = 64;
    c.numRequests = 48;
    c.warmupRequests = 8;
    c.maxStages = 600;
    return c;
}

/** Records the full callback sequence for ordering assertions. */
class RecordingObserver : public SimObserver
{
  public:
    enum class Event
    {
        Begin,
        Stage,
        Retire,
        End
    };

    void onSimBegin(const ServingSystem &system,
                    const SimConfig &config) override
    {
        (void)config;
        systemName = system.name();
        events.push_back(Event::Begin);
    }

    void onStage(const StageObservation &obs) override
    {
        events.push_back(Event::Stage);
        stageIndexes.push_back(obs.index);
        EXPECT_GE(obs.end, obs.start);
        EXPECT_GT(obs.kvTokens, 0);
        lastStageEnd = obs.end;
    }

    void onRequestRetired(const Request &request,
                          PicoSec now) override
    {
        events.push_back(Event::Retire);
        EXPECT_TRUE(request.done());
        EXPECT_LE(request.finished, now);
        ++retired;
    }

    void onSimEnd(const SimResult &result) override
    {
        events.push_back(Event::End);
        finalTokens = result.generatedTokens;
    }

    std::vector<Event> events;
    std::vector<std::int64_t> stageIndexes;
    std::string systemName;
    std::int64_t retired = 0;
    std::int64_t finalTokens = 0;
    PicoSec lastStageEnd = 0;
};

std::int64_t
countEvents(const RecordingObserver &rec,
            RecordingObserver::Event kind)
{
    std::int64_t n = 0;
    for (auto e : rec.events)
        if (e == kind)
            ++n;
    return n;
}

TEST(Engine, GoldenGpuMatchesSeedRunSimulation)
{
    // Values captured from the seed implementation's
    // runSimulation on this exact configuration; the engine must
    // reproduce them bit-for-bit (time/token integers) and to
    // rounding (energy).
    const SimResult r =
        SimulationEngine(goldenConfig("gpu")).run();
    EXPECT_EQ(r.metrics.elapsed, 1688760707856LL);
    EXPECT_EQ(r.metrics.totalTokens, 2521);
    EXPECT_EQ(r.generatedTokens, 3137);
    EXPECT_EQ(r.peakBatch, 16);
    EXPECT_EQ(r.metrics.decodingOnlyStages, 210);
    EXPECT_EQ(r.metrics.mixedStages, 27);
    EXPECT_NEAR(r.totals.totalEnergyJ(), 769.36158265872291,
                1e-6 * 769.36158265872291);
    EXPECT_NEAR(r.metrics.tbtMs.percentile(50), 8.563581246,
                1e-6);
}

TEST(Engine, GoldenDuplexMatchesSeedRunSimulation)
{
    const SimResult r =
        SimulationEngine(goldenConfig("duplex")).run();
    EXPECT_EQ(r.metrics.elapsed, 800495559533LL);
    EXPECT_EQ(r.metrics.totalTokens, 2521);
    EXPECT_EQ(r.generatedTokens, 3137);
    EXPECT_EQ(r.peakBatch, 16);
    EXPECT_EQ(r.metrics.decodingOnlyStages, 210);
    EXPECT_EQ(r.metrics.mixedStages, 27);
    EXPECT_NEAR(r.totals.totalEnergyJ(), 551.21667480047654,
                1e-6 * 551.21667480047654);
    EXPECT_NEAR(r.metrics.tbtMs.percentile(50), 3.361203755,
                1e-6);
}

TEST(Engine, ObserverCallbackOrderingAndCounts)
{
    SimulationEngine engine(goldenConfig("gpu"));
    RecordingObserver rec;
    engine.addObserver(&rec);
    const SimResult r = engine.run();

    ASSERT_GE(rec.events.size(), 3u);
    EXPECT_EQ(rec.events.front(), RecordingObserver::Event::Begin);
    EXPECT_EQ(rec.events.back(), RecordingObserver::Event::End);
    EXPECT_EQ(countEvents(rec, RecordingObserver::Event::Begin), 1);
    EXPECT_EQ(countEvents(rec, RecordingObserver::Event::End), 1);

    // One onStage per executed stage, indexed 0..N-1 in order.
    const std::int64_t stages = r.metrics.decodingOnlyStages +
                                r.metrics.mixedStages;
    EXPECT_EQ(countEvents(rec, RecordingObserver::Event::Stage),
              stages);
    ASSERT_FALSE(rec.stageIndexes.empty());
    for (std::size_t i = 0; i < rec.stageIndexes.size(); ++i)
        EXPECT_EQ(rec.stageIndexes[i],
                  static_cast<std::int64_t>(i));

    // Every request retires exactly once (closed loop, all done).
    EXPECT_EQ(rec.retired, 48);
    EXPECT_EQ(countEvents(rec, RecordingObserver::Event::Retire),
              48);

    // Retires only ever follow a stage, never precede the first.
    bool seen_stage = false;
    for (auto e : rec.events) {
        if (e == RecordingObserver::Event::Stage)
            seen_stage = true;
        if (e == RecordingObserver::Event::Retire) {
            EXPECT_TRUE(seen_stage);
        }
    }

    EXPECT_EQ(rec.systemName, "GPU");
    EXPECT_EQ(rec.finalTokens, r.generatedTokens);
}

TEST(Engine, ObserversFireOnCustomLoopSystems)
{
    // The split system runs its own driver loop but must feed the
    // same observer stream.
    SimConfig c = goldenConfig("duplex-split");
    c.maxStages = 20000;
    SimulationEngine engine(c);
    RecordingObserver rec;
    engine.addObserver(&rec);
    const SimResult r = engine.run();

    EXPECT_EQ(rec.events.front(), RecordingObserver::Event::Begin);
    EXPECT_EQ(rec.events.back(), RecordingObserver::Event::End);
    EXPECT_GT(countEvents(rec, RecordingObserver::Event::Stage), 0);
    EXPECT_EQ(rec.retired, 48);
    EXPECT_EQ(rec.finalTokens, r.generatedTokens);
}

TEST(Engine, MultipleObserversAllReceiveCallbacks)
{
    SimulationEngine engine(goldenConfig("duplex"));
    RecordingObserver a;
    RecordingObserver b;
    engine.addObserver(&a);
    engine.addObserver(&b);
    engine.run();
    EXPECT_EQ(a.events.size(), b.events.size());
    EXPECT_GT(a.events.size(), 0u);
}

TEST(Engine, DropInObserversCollectMetrics)
{
    SimulationEngine engine(goldenConfig("gpu"));
    StageTimeHistogram hist;
    KvOccupancyTrace kv;
    engine.addObserver(&hist);
    engine.addObserver(&kv);
    const SimResult r = engine.run();

    const std::int64_t stages = r.metrics.decodingOnlyStages +
                                r.metrics.mixedStages;
    EXPECT_EQ(hist.stageMs().count(),
              static_cast<std::size_t>(stages));
    EXPECT_GT(hist.stageMs().percentile(99), 0.0);
    EXPECT_EQ(kv.points().size(),
              static_cast<std::size_t>(stages));
    EXPECT_GT(kv.peakKvTokens(), 0);
    // Occupancy never exceeds what the system can hold.
    const std::unique_ptr<ServingSystem> system =
        makeSystem("gpu", mixtralConfig());
    EXPECT_LE(kv.peakKvTokens(), system->maxKvTokens());
}

TEST(Engine, ExpertRoutingCountsHistogramMatchesRouting)
{
    // Every stage routes totalTokens x topK assignments per MoE
    // layer; the observer's run histogram must account for exactly
    // that, across every expert.
    SimConfig c = goldenConfig("duplex");
    SimulationEngine engine(c);
    ExpertRoutingCounts routing;

    class TokenCounter : public SimObserver
    {
      public:
        std::int64_t stageTokens = 0;
        void onStage(const StageObservation &obs) override
        {
            stageTokens += obs.shape.totalTokens();
        }
    } counter;

    engine.addObserver(&routing);
    engine.addObserver(&counter);
    engine.run();

    const ModelConfig m = c.model;
    ASSERT_EQ(routing.tokensPerExpert().size(),
              static_cast<std::size_t>(m.numExperts));
    EXPECT_EQ(routing.totalRouted(),
              counter.stageTokens * m.topK * m.numMoeLayers());
    for (auto tokens : routing.tokensPerExpert())
        EXPECT_GT(tokens, 0);
    // The paper-default uniform gate cannot be pathologically skewed
    // over a run this long.
    EXPECT_GE(routing.skew(), 1.0);
    EXPECT_LT(routing.skew(), 2.0);
}

TEST(Engine, ExpertRoutingCountsEmptyForDenseModels)
{
    SimConfig c = goldenConfig("gpu");
    c.model = llama3Config();
    c.numRequests = 8;
    c.maxStages = 120;
    SimulationEngine engine(c);
    ExpertRoutingCounts routing;
    engine.addObserver(&routing);
    engine.run();
    EXPECT_TRUE(routing.tokensPerExpert().empty());
    EXPECT_EQ(routing.totalRouted(), 0);
}

TEST(Engine, SloAttainmentBoundsAndGoodput)
{
    // A vacuous SLO admits every request; an impossible one admits
    // none — and goodput follows the attaining set.
    SimConfig c = goldenConfig("gpu");
    SimulationEngine engine(c);
    SloAttainment lenient({1e9, 1e9});
    SloAttainment impossible({0.0, 0.0});
    engine.addObserver(&lenient);
    engine.addObserver(&impossible);
    const SimResult r = engine.run();

    EXPECT_EQ(lenient.totalRequests(), 48);
    EXPECT_EQ(lenient.attainedRequests(), 48);
    EXPECT_DOUBLE_EQ(lenient.attainment(), 1.0);
    EXPECT_DOUBLE_EQ(lenient.t2ftAttainment(), 1.0);
    EXPECT_DOUBLE_EQ(lenient.tbtAttainment(), 1.0);
    // Every token came from an attaining request, so goodput over
    // the retire span is within a stage of raw throughput.
    EXPECT_GT(lenient.goodputTokensPerSec(), 0.0);

    EXPECT_EQ(impossible.totalRequests(), 48);
    EXPECT_EQ(impossible.attainedRequests(), 0);
    EXPECT_DOUBLE_EQ(impossible.attainment(), 0.0);
    EXPECT_DOUBLE_EQ(impossible.goodputTokensPerSec(), 0.0);

    // The aggregate ServingMetrics view agrees at the extremes.
    EXPECT_DOUBLE_EQ(r.metrics.t2ftAttainment({1e9, 1e9}), 1.0);
    EXPECT_DOUBLE_EQ(r.metrics.tbtAttainment({0.0, 0.0}), 0.0);
}

TEST(Engine, SloAttainmentMonotoneInTheObjective)
{
    // Loosening an SLO can only admit more requests, and meeting
    // both objectives can only be rarer than meeting either one.
    SimConfig c = goldenConfig("duplex");
    SimulationEngine engine(c);
    // Thresholds near the median TBT split the population.
    SloAttainment strict({100.0, 3.0});
    SloAttainment loose({200.0, 5.0});
    engine.addObserver(&strict);
    engine.addObserver(&loose);
    engine.run();
    EXPECT_EQ(strict.totalRequests(), loose.totalRequests());
    EXPECT_GT(strict.totalRequests(), 0);
    EXPECT_LE(strict.t2ftAttainment(), loose.t2ftAttainment());
    EXPECT_LE(strict.tbtAttainment(), loose.tbtAttainment());
    EXPECT_LE(strict.attainment(), loose.attainment());
    for (const SloAttainment *a : {&strict, &loose}) {
        EXPECT_LE(a->attainment(), a->t2ftAttainment());
        EXPECT_LE(a->attainment(), a->tbtAttainment());
        EXPECT_LE(a->attainedRequests(), a->totalRequests());
    }
}

TEST(Engine, OpenLoopIdleAdvanceJumpsExactlyToArrival)
{
    // With Poisson arrivals and an idle batcher, the clock must
    // land exactly on the next arrival — the one-picosecond bump is
    // reserved for stalls where the clock would not otherwise move.
    SimConfig c = goldenConfig("gpu");
    c.workload.qps = 2.0; // open loop
    c.numRequests = 6;
    c.maxStages = 4000;

    // Reproduce the generator stream to learn the arrival times.
    RequestGenerator gen(c.workload);
    const std::vector<Request> requests = gen.take(c.numRequests);
    ASSERT_GT(requests.front().arrival, 0);

    class FirstStage : public SimObserver
    {
      public:
        PicoSec firstStart = -1;
        void onStage(const StageObservation &obs) override
        {
            if (firstStart < 0)
                firstStart = obs.start;
        }
    } first;

    SimulationEngine engine(c);
    engine.addObserver(&first);
    engine.run();
    EXPECT_EQ(first.firstStart, requests.front().arrival);
}

TEST(Engine, RunOnExistingInstanceMatchesRegistryRun)
{
    const SimConfig c = goldenConfig("duplex");
    const SimResult via_registry = SimulationEngine(c).run();
    SystemOptions opts;
    opts.seed = c.seed;
    const std::unique_ptr<ServingSystem> system =
        makeSystem("duplex", c.model, opts);
    const SimResult via_instance =
        SimulationEngine(c).run(*system);
    EXPECT_EQ(via_registry.metrics.elapsed,
              via_instance.metrics.elapsed);
    EXPECT_EQ(via_registry.metrics.totalTokens,
              via_instance.metrics.totalTokens);
}

} // namespace
} // namespace duplex
