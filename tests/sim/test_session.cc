/**
 * @file
 * Engine-level session + prefix-cache tests:
 *
 *  - Double runs of the session workload through the full engine
 *    (retirement feedback, think-time closed loop, prefix cache)
 *    agree bit-for-bit — the determinism CI jobs in unit form.
 *  - A prefix cache enabled on a session-less workload changes
 *    NOTHING: requests without a session id never probe, and an
 *    empty pool charges no headroom, so the SimResult is identical
 *    to the cache-off run (the golden-safety contract).
 *  - A cache-enabled session run actually hits: warm retirements
 *    exist, the cache ledger closes, and the SloAttainment
 *    warm/cold split covers every retirement.
 */

#include <gtest/gtest.h>

#include "sim/engine.hh"
#include "sim/observers.hh"
#include "sim/registry.hh"

namespace duplex
{
namespace
{

SimConfig
sessionConfig()
{
    SimConfig c;
    c.systemName = "gpu";
    c.model = mixtralConfig();
    c.maxBatch = 16;
    c.workloadName = "session";
    c.workload.qps = 4.0; // fresh sessions/s
    c.workload.meanInputLen = 192;
    c.workload.meanOutputLen = 48;
    c.workload.sessionTurns = 4;
    c.workload.sharedPrefixTokens = 96;
    c.workload.meanThinkSec = 0.1;
    c.numRequests = 64;
    c.warmupRequests = 8;
    c.maxStages = 200000;
    return c;
}

void
expectSameSamples(const SampleStats &a, const SampleStats &b,
                  const char *what)
{
    EXPECT_EQ(a.count(), b.count()) << what;
    EXPECT_EQ(a.sum(), b.sum()) << what;
    EXPECT_EQ(a.min(), b.min()) << what;
    EXPECT_EQ(a.max(), b.max()) << what;
}

void
expectSameSimResult(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.metrics.elapsed, b.metrics.elapsed);
    EXPECT_EQ(a.metrics.totalTokens, b.metrics.totalTokens);
    EXPECT_EQ(a.metrics.decodingOnlyStages,
              b.metrics.decodingOnlyStages);
    EXPECT_EQ(a.metrics.mixedStages, b.metrics.mixedStages);
    EXPECT_EQ(a.generatedTokens, b.generatedTokens);
    EXPECT_EQ(a.peakBatch, b.peakBatch);
    EXPECT_EQ(a.totals.time, b.totals.time);
    expectSameSamples(a.metrics.tbtMs, b.metrics.tbtMs, "tbt");
    expectSameSamples(a.metrics.t2ftMs, b.metrics.t2ftMs, "t2ft");
    expectSameSamples(a.metrics.e2eMs, b.metrics.e2eMs, "e2e");
}

TEST(SessionEngine, DoubleRunsAreBitIdenticalWithoutCache)
{
    const SimConfig c = sessionConfig();
    const SimResult a = SimulationEngine(c).run();
    const SimResult b = SimulationEngine(c).run();
    expectSameSimResult(a, b);
    EXPECT_EQ(a.prefixCache.lookups, 0); // cache off: never probed
}

TEST(SessionEngine, DoubleRunsAreBitIdenticalWithCache)
{
    SimConfig c = sessionConfig();
    c.prefixCache.budgetBytes = 512ll << 20;
    c.prefixCache.evictPolicy = "lru";
    c.prefixCache.sharedPrefixTokens =
        c.workload.sharedPrefixTokens;
    const SimResult a = SimulationEngine(c).run();
    const SimResult b = SimulationEngine(c).run();
    expectSameSimResult(a, b);
    EXPECT_EQ(a.prefixCache.lookups, b.prefixCache.lookups);
    EXPECT_EQ(a.prefixCache.hits, b.prefixCache.hits);
    EXPECT_EQ(a.prefixCache.hitTokens, b.prefixCache.hitTokens);
    EXPECT_EQ(a.prefixCache.evictions, b.prefixCache.evictions);
}

TEST(SessionEngine, CacheOnSessionlessWorkloadChangesNothing)
{
    // Requests without a session id never probe the pool, and an
    // empty pool charges no KV headroom: enabling the cache on a
    // plain workload must leave the run bit-identical.
    SimConfig off;
    off.systemName = "gpu";
    off.model = mixtralConfig();
    off.maxBatch = 16;
    off.workload.meanInputLen = 256;
    off.workload.meanOutputLen = 64;
    off.workload.qps = 8.0;
    off.numRequests = 48;
    off.warmupRequests = 8;
    off.maxStages = 20000;

    SimConfig on = off;
    on.prefixCache.budgetBytes = 1ll << 30;
    on.prefixCache.evictPolicy = "lfu";

    const SimResult a = SimulationEngine(off).run();
    const SimResult b = SimulationEngine(on).run();
    expectSameSimResult(a, b);
    EXPECT_EQ(b.prefixCache.lookups, 0);
    EXPECT_EQ(b.prefixCache.installs, 0);
}

TEST(SessionEngine, CachedSessionRunHitsAndLedgerCloses)
{
    SimConfig c = sessionConfig();
    c.prefixCache.budgetBytes = 512ll << 20;
    c.prefixCache.evictPolicy = "lru";
    c.prefixCache.sharedPrefixTokens =
        c.workload.sharedPrefixTokens;

    SimulationEngine engine(c);
    PrefixCacheStats cache;
    SloAttainment slo(SloSpec{1500.0, 40.0});
    engine.addObserver(&cache);
    engine.addObserver(&slo);
    const SimResult r = engine.run();

    const PrefixCacheMetrics &m = r.prefixCache;
    EXPECT_GT(m.lookups, 0);
    EXPECT_GT(m.hits, 0);
    EXPECT_GT(m.hitTokens, 0);
    EXPECT_EQ(m.lookups, m.hits + m.misses);
    EXPECT_GT(m.hitRate(), 0.0);
    EXPECT_LE(m.hitRate(), 1.0);
    // The byte ledger closes over the whole run.
    EXPECT_EQ(m.installedBytes,
              m.evictedBytes + m.acquiredBytes + m.residentBytes);

    // Warm/cold observers: warm retirements exist (hits above) and
    // the split covers every retired request.
    EXPECT_GT(cache.warmRequests(), 0);
    EXPECT_GT(cache.cachedTokens(), 0);
    EXPECT_GT(cache.warmFraction(), 0.0);
    EXPECT_LE(cache.warmFraction(), 1.0);
    EXPECT_EQ(slo.warmRequests() + slo.coldRequests(),
              slo.totalRequests());
    EXPECT_GE(slo.warmT2ftAttainment(), 0.0);
    EXPECT_LE(slo.warmT2ftAttainment(), 1.0);
    EXPECT_GE(slo.coldT2ftAttainment(), 0.0);
    EXPECT_LE(slo.coldT2ftAttainment(), 1.0);
}

} // namespace
} // namespace duplex
