/**
 * @file
 * System preset tests: Section VI device counts and configuration
 * wiring.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/presets.hh"

namespace duplex
{
namespace
{

TEST(Presets, DefaultTopologies)
{
    const SystemTopology mixtral = defaultTopology(mixtralConfig());
    EXPECT_EQ(mixtral.numNodes, 1);
    EXPECT_EQ(mixtral.devicesPerNode, 4);

    const SystemTopology glam = defaultTopology(glamConfig());
    EXPECT_EQ(glam.numNodes, 1);
    EXPECT_EQ(glam.devicesPerNode, 8);

    const SystemTopology grok = defaultTopology(grok1Config());
    EXPECT_EQ(grok.numNodes, 2);
    EXPECT_EQ(grok.devicesPerNode, 8);

    EXPECT_EQ(defaultTopology(optConfig()).totalDevices(), 4);
    EXPECT_EQ(defaultTopology(llama3Config()).totalDevices(), 4);
}

TEST(Presets, DoublingFillsNodesFirst)
{
    // "we first increased the number of devices per node to a
    // maximum of eight and increased the number of nodes".
    const SystemTopology mixtral2 =
        defaultTopology(mixtralConfig(), true);
    EXPECT_EQ(mixtral2.numNodes, 1);
    EXPECT_EQ(mixtral2.devicesPerNode, 8);

    const SystemTopology glam2 = defaultTopology(glamConfig(), true);
    EXPECT_EQ(glam2.numNodes, 2);
    EXPECT_EQ(glam2.devicesPerNode, 8);

    const SystemTopology grok2 =
        defaultTopology(grok1Config(), true);
    EXPECT_EQ(grok2.numNodes, 4);
    EXPECT_EQ(grok2.devicesPerNode, 8);
}

TEST(Presets, GpuHasNoLowEngine)
{
    const auto cfg =
        makeClusterConfig(SystemKind::Gpu, mixtralConfig());
    EXPECT_FALSE(cfg.deviceSpec.hasLowEngine);
    EXPECT_FALSE(cfg.deviceSpec.coProcessing);
}

TEST(Presets, DuplexVariantsWiring)
{
    const auto base =
        makeClusterConfig(SystemKind::Duplex, mixtralConfig());
    EXPECT_TRUE(base.deviceSpec.hasLowEngine);
    EXPECT_FALSE(base.deviceSpec.coProcessing);
    EXPECT_EQ(base.expertPlacement,
              ExpertPlacement::ExpertParallel);

    const auto pe =
        makeClusterConfig(SystemKind::DuplexPE, mixtralConfig());
    EXPECT_TRUE(pe.deviceSpec.coProcessing);
    EXPECT_EQ(pe.expertPlacement, ExpertPlacement::ExpertParallel);

    const auto et =
        makeClusterConfig(SystemKind::DuplexPEET, mixtralConfig());
    EXPECT_TRUE(et.deviceSpec.coProcessing);
    EXPECT_EQ(et.expertPlacement,
              ExpertPlacement::ExpertTensorParallel);
}

TEST(Presets, EtOnDenseModelStaysExpertParallel)
{
    // ET is meaningless without experts; the preset must not
    // request an expert placement the sharding layer would reject.
    const auto cfg =
        makeClusterConfig(SystemKind::DuplexPEET, llama3Config());
    EXPECT_EQ(cfg.expertPlacement,
              ExpertPlacement::ExpertParallel);
}

TEST(Presets, BankPimUsesBankPath)
{
    const auto cfg =
        makeClusterConfig(SystemKind::BankPim, mixtralConfig());
    EXPECT_TRUE(cfg.deviceSpec.hasLowEngine);
    EXPECT_EQ(cfg.deviceSpec.lowPath, DramPath::BankLocal);
    EXPECT_EQ(cfg.deviceSpec.lowCls, ComputeClass::BankPim);
}

TEST(Presets, BankGroupPimUsesBankGroupPath)
{
    const auto cfg = makeClusterConfig(SystemKind::BankGroupPim,
                                       mixtralConfig());
    EXPECT_EQ(cfg.deviceSpec.lowPath, DramPath::BankGroup);
}

TEST(Presets, HeteroConfigShape)
{
    const auto cfg = makeHeteroConfig(mixtralConfig());
    EXPECT_EQ(cfg.numGpus, 2);
    EXPECT_EQ(cfg.numPimDevices, 2);
    EXPECT_FALSE(cfg.gpuSpec.hasLowEngine);
    EXPECT_TRUE(cfg.pimSpec.hasLowEngine);
    EXPECT_GT(cfg.link.bytesPerSec, 100e9);
}

TEST(Presets, SystemNamesDistinct)
{
    const std::vector<SystemKind> kinds = {
        SystemKind::Gpu,      SystemKind::Gpu2x,
        SystemKind::Duplex,   SystemKind::DuplexPE,
        SystemKind::DuplexPEET, SystemKind::BankPim,
        SystemKind::BankGroupPim, SystemKind::Hetero,
        SystemKind::DuplexSplit};
    std::set<std::string> names;
    for (auto k : kinds)
        names.insert(systemName(k));
    EXPECT_EQ(names.size(), kinds.size());
}

TEST(Presets, DeviceMemoryMatchesH100)
{
    for (auto kind : {SystemKind::Gpu, SystemKind::Duplex,
                      SystemKind::BankPim}) {
        const auto cfg =
            makeClusterConfig(kind, mixtralConfig());
        EXPECT_EQ(cfg.deviceSpec.memCapacity, 80ull * kGiB);
    }
}

TEST(StageResultArithmetic, AccumulatesSlices)
{
    StageResult a;
    a.time = 100;
    a.slice(LayerClass::Moe).time = 60;
    a.slice(LayerClass::Moe).energy.dramJ = 1.0;
    StageResult b;
    b.time = 50;
    b.slice(LayerClass::Moe).time = 20;
    b.slice(LayerClass::Moe).energy.computeJ = 0.5;
    a += b;
    EXPECT_EQ(a.time, 150);
    EXPECT_EQ(a.slice(LayerClass::Moe).time, 80);
    EXPECT_DOUBLE_EQ(a.totalEnergyJ(), 1.5);
}

} // namespace
} // namespace duplex
