/**
 * @file
 * SweepRunner tests: parity with serial SimulationEngine runs,
 * input-order results, worker-pool sizing and error propagation.
 */

#include <gtest/gtest.h>

#include "sim/engine.hh"
#include "sim/sweep.hh"

namespace duplex
{
namespace
{

SimConfig
smallConfig(const std::string &system, int batch, std::uint64_t seed)
{
    SimConfig c;
    c.systemName = system;
    c.model = mixtralConfig();
    c.maxBatch = batch;
    c.workload.meanInputLen = 128;
    c.workload.meanOutputLen = 16;
    c.numRequests = 12;
    c.warmupRequests = 2;
    c.maxStages = 400;
    c.seed = seed;
    return c;
}

TEST(SweepRunner, EmptyBatchYieldsNoResults)
{
    EXPECT_TRUE(SweepRunner().run({}).empty());
}

TEST(SweepRunner, DefaultsToHardwareConcurrency)
{
    EXPECT_GE(SweepRunner().workers(), 1);
    EXPECT_EQ(SweepRunner(3).workers(), 3);
}

TEST(SweepRunner, MatchesSerialEngineInOrder)
{
    // Each run owns its system instance, so the parallel sweep must
    // reproduce the serial engine bit-for-bit, in input order.
    const std::vector<SimConfig> configs = {
        smallConfig("gpu", 8, 1),
        smallConfig("duplex", 8, 2),
        smallConfig("duplex-pe-et", 4, 3),
        smallConfig("gpu", 16, 4),
        smallConfig("duplex-split", 8, 5),
    };
    const std::vector<SimResult> parallel =
        SweepRunner(4).run(configs);
    ASSERT_EQ(parallel.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const SimResult serial =
            SimulationEngine(configs[i]).run();
        EXPECT_EQ(parallel[i].metrics.elapsed,
                  serial.metrics.elapsed)
            << "config " << i;
        EXPECT_EQ(parallel[i].generatedTokens,
                  serial.generatedTokens)
            << "config " << i;
        EXPECT_EQ(parallel[i].totals.time, serial.totals.time)
            << "config " << i;
        EXPECT_DOUBLE_EQ(parallel[i].totals.totalEnergyJ(),
                         serial.totals.totalEnergyJ())
            << "config " << i;
    }
}

TEST(SweepRunner, SingleWorkerFallsBackToSerial)
{
    const std::vector<SimConfig> configs = {
        smallConfig("gpu", 8, 1), smallConfig("duplex", 8, 2)};
    const std::vector<SimResult> results =
        SweepRunner(1).run(configs);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_GT(results[0].generatedTokens, 0);
    EXPECT_GT(results[1].generatedTokens, 0);
}

TEST(SweepRunner, DrainsBatchesLargerThanThePool)
{
    // 9 runs over 2 workers: the queue must drain completely and
    // keep input order.
    std::vector<SimConfig> configs;
    for (int i = 0; i < 9; ++i)
        configs.push_back(
            smallConfig(i % 2 ? "duplex" : "gpu", 4 + i, 100 + i));
    const std::vector<SimResult> results =
        SweepRunner(2).run(configs);
    ASSERT_EQ(results.size(), 9u);
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_GT(results[i].generatedTokens, 0) << "config " << i;
        EXPECT_EQ(results[i].metrics.elapsed,
                  SimulationEngine(configs[i]).run().metrics.elapsed)
            << "config " << i;
    }
}

} // namespace
} // namespace duplex
