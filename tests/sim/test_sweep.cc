/**
 * @file
 * SweepRunner tests: parity with serial SimulationEngine runs,
 * input-order results, worker-pool sizing and error propagation.
 */

#include <gtest/gtest.h>

#include "sim/engine.hh"
#include "sim/observers.hh"
#include "sim/sweep.hh"

namespace duplex
{
namespace
{

SimConfig
smallConfig(const std::string &system, int batch, std::uint64_t seed)
{
    SimConfig c;
    c.systemName = system;
    c.model = mixtralConfig();
    c.maxBatch = batch;
    c.workload.meanInputLen = 128;
    c.workload.meanOutputLen = 16;
    c.numRequests = 12;
    c.warmupRequests = 2;
    c.maxStages = 400;
    c.seed = seed;
    return c;
}

TEST(SweepRunner, EmptyBatchYieldsNoResults)
{
    EXPECT_TRUE(SweepRunner().run({}).empty());
}

TEST(SweepRunner, DefaultsToHardwareConcurrency)
{
    EXPECT_GE(SweepRunner().workers(), 1);
    EXPECT_EQ(SweepRunner(3).workers(), 3);
}

TEST(SweepRunner, MatchesSerialEngineInOrder)
{
    // Each run owns its system instance, so the parallel sweep must
    // reproduce the serial engine bit-for-bit, in input order.
    const std::vector<SimConfig> configs = {
        smallConfig("gpu", 8, 1),
        smallConfig("duplex", 8, 2),
        smallConfig("duplex-pe-et", 4, 3),
        smallConfig("gpu", 16, 4),
        smallConfig("duplex-split", 8, 5),
    };
    const std::vector<SimResult> parallel =
        SweepRunner(4).run(configs);
    ASSERT_EQ(parallel.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const SimResult serial =
            SimulationEngine(configs[i]).run();
        EXPECT_EQ(parallel[i].metrics.elapsed,
                  serial.metrics.elapsed)
            << "config " << i;
        EXPECT_EQ(parallel[i].generatedTokens,
                  serial.generatedTokens)
            << "config " << i;
        EXPECT_EQ(parallel[i].totals.time, serial.totals.time)
            << "config " << i;
        EXPECT_DOUBLE_EQ(parallel[i].totals.totalEnergyJ(),
                         serial.totals.totalEnergyJ())
            << "config " << i;
    }
}

TEST(SweepRunner, ObserverFactoryAttachesPerRunObservers)
{
    // Each parallel run gets its own observers from the factory and
    // returns them filled; the collected metrics must match a
    // serial engine with the same observers attached.
    const std::vector<SimConfig> configs = {
        smallConfig("gpu", 8, 1),
        smallConfig("duplex", 8, 2),
        smallConfig("duplex-split", 8, 3),
    };
    const SloSpec slo{1500.0, 40.0};
    const ObserverFactory factory = [&](const SimConfig &) {
        std::vector<std::unique_ptr<SimObserver>> obs;
        obs.push_back(std::make_unique<SloAttainment>(slo));
        obs.push_back(std::make_unique<StageTimeHistogram>());
        return obs;
    };
    const std::vector<ObservedRun> runs =
        SweepRunner(3).runObserved(configs, factory);
    ASSERT_EQ(runs.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        ASSERT_EQ(runs[i].observers.size(), 2u);
        const auto *att = dynamic_cast<const SloAttainment *>(
            runs[i].observers[0].get());
        const auto *hist =
            dynamic_cast<const StageTimeHistogram *>(
                runs[i].observers[1].get());
        ASSERT_NE(att, nullptr);
        ASSERT_NE(hist, nullptr);

        SimulationEngine serial(configs[i]);
        SloAttainment serial_att(slo);
        StageTimeHistogram serial_hist;
        serial.addObserver(&serial_att);
        serial.addObserver(&serial_hist);
        const SimResult serial_result = serial.run();

        EXPECT_EQ(att->totalRequests(),
                  serial_att.totalRequests())
            << "config " << i;
        EXPECT_EQ(att->attainedRequests(),
                  serial_att.attainedRequests())
            << "config " << i;
        EXPECT_EQ(hist->stageMs().count(),
                  serial_hist.stageMs().count())
            << "config " << i;
        EXPECT_EQ(runs[i].result.metrics.elapsed,
                  serial_result.metrics.elapsed)
            << "config " << i;
    }
}

TEST(SweepRunner, NullFactoryYieldsNoObservers)
{
    const std::vector<SimConfig> configs = {
        smallConfig("gpu", 8, 1)};
    const std::vector<ObservedRun> runs =
        SweepRunner(1).runObserved(configs, {});
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_TRUE(runs[0].observers.empty());
    EXPECT_GT(runs[0].result.generatedTokens, 0);
}

TEST(SweepRunner, SingleWorkerFallsBackToSerial)
{
    const std::vector<SimConfig> configs = {
        smallConfig("gpu", 8, 1), smallConfig("duplex", 8, 2)};
    const std::vector<SimResult> results =
        SweepRunner(1).run(configs);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_GT(results[0].generatedTokens, 0);
    EXPECT_GT(results[1].generatedTokens, 0);
}

TEST(SweepRunner, DrainsBatchesLargerThanThePool)
{
    // 9 runs over 2 workers: the queue must drain completely and
    // keep input order.
    std::vector<SimConfig> configs;
    for (int i = 0; i < 9; ++i)
        configs.push_back(
            smallConfig(i % 2 ? "duplex" : "gpu", 4 + i, 100 + i));
    const std::vector<SimResult> results =
        SweepRunner(2).run(configs);
    ASSERT_EQ(results.size(), 9u);
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_GT(results[i].generatedTokens, 0) << "config " << i;
        EXPECT_EQ(results[i].metrics.elapsed,
                  SimulationEngine(configs[i]).run().metrics.elapsed)
            << "config " << i;
    }
}

} // namespace
} // namespace duplex
