/**
 * @file
 * PrefixCachePool tests — the kvcache subsystem's contracts:
 *
 *  - Byte ledger: installedBytes == evictedBytes + acquiredBytes +
 *    residentBytes at every step (every installed byte is resident,
 *    evicted, or checked out into a live batch).
 *  - Checkout-on-hit: a session hit removes the entry (its bytes
 *    ride with the live batch until retirement re-installs); a
 *    shared-prefix hit only touches recency.
 *  - Eviction order pins for the stock lru/lfu policies, on a
 *    candidate set where the two disagree.
 *  - The hit cap (inputLen - 1), over-budget install skip, reclaim
 *    pressure valve, disabled-pool no-ops, and the registry's
 *    sorted-ids contract shared with the other four registries.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "kvcache/prefix_cache.hh"

namespace duplex
{
namespace
{

/** Tiny pool with 1 byte/token so budgets read as token counts. */
PrefixCachePool
tokenPool(std::int64_t budget_tokens,
          const std::string &evict = "lru",
          std::int64_t shared_prefix = 0)
{
    PrefixCacheSpec spec;
    spec.budgetBytes = budget_tokens;
    spec.evictPolicy = evict;
    spec.sharedPrefixTokens = shared_prefix;
    return PrefixCachePool(spec, /*bytesPerToken=*/1);
}

Request
sessionRequest(std::int64_t session, std::int64_t input_len,
               std::int64_t generated = 0)
{
    Request r;
    r.sessionId = session;
    r.inputLen = input_len;
    r.generated = generated;
    return r;
}

void
expectLedgerClosed(const PrefixCachePool &pool)
{
    const PrefixCacheMetrics &m = pool.metrics();
    EXPECT_EQ(m.installedBytes,
              m.evictedBytes + m.acquiredBytes + m.residentBytes);
    EXPECT_GE(m.residentBytes, 0);
    EXPECT_LE(m.residentBytes, m.peakResidentBytes);
}

TEST(EvictionRegistry, StockPoliciesAreRegisteredAndSorted)
{
    const EvictionPolicyRegistry &registry =
        EvictionPolicyRegistry::instance();
    for (const std::string id : {"lru", "lfu"}) {
        EXPECT_TRUE(registry.contains(id)) << id;
        EXPECT_FALSE(registry.summary(id).empty()) << id;
        const auto policy = makeEvictionPolicy(id);
        EXPECT_EQ(policy->name(), id);
        EXPECT_FALSE(policy->describe().empty()) << id;
    }
    EXPECT_FALSE(registry.contains("no-such-policy"));
    // Same enumeration contract as the system/workload/routing/
    // scheduling registries: lexicographic, not registration order.
    const std::vector<std::string> ids =
        registeredEvictionPolicies();
    EXPECT_GE(ids.size(), 2u);
    EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
}

TEST(PrefixCache, DisabledPoolIsInert)
{
    PrefixCachePool pool{PrefixCacheSpec{}, /*bytesPerToken=*/1};
    EXPECT_FALSE(pool.enabled());
    EXPECT_EQ(pool.acquire(sessionRequest(0, 100)), 0);
    pool.install(sessionRequest(0, 100, 50));
    pool.reclaim(1000);
    EXPECT_EQ(pool.entryCount(), 0u);
    EXPECT_EQ(pool.residentTokens(), 0);
    EXPECT_EQ(pool.metrics().lookups, 0);
    EXPECT_EQ(pool.metrics().installs, 0);
}

TEST(PrefixCache, SessionlessRequestsNeverProbe)
{
    PrefixCachePool pool = tokenPool(1000);
    Request r;
    r.inputLen = 100; // sessionId stays -1
    EXPECT_EQ(pool.acquire(r), 0);
    pool.install(r);
    EXPECT_EQ(pool.metrics().lookups, 0);
    EXPECT_EQ(pool.entryCount(), 0u);
}

TEST(PrefixCache, SessionHitChecksTheEntryOut)
{
    PrefixCachePool pool = tokenPool(1000);
    pool.install(sessionRequest(7, 60, 40)); // 100-token context
    EXPECT_EQ(pool.entryCount(), 1u);
    EXPECT_EQ(pool.residentTokens(), 100);

    // The follow-up turn re-sends the history plus new tokens: the
    // whole cached context is served warm...
    const std::int64_t hit = pool.acquire(sessionRequest(7, 130));
    EXPECT_EQ(hit, 100);
    // ...and the entry leaves the pool — the live batch carries its
    // bytes until retirement installs the grown context.
    EXPECT_EQ(pool.entryCount(), 0u);
    EXPECT_EQ(pool.residentTokens(), 0);
    EXPECT_EQ(pool.metrics().hits, 1);
    EXPECT_EQ(pool.metrics().acquiredBytes, 100);
    expectLedgerClosed(pool);

    // A second probe for the same session is now cold.
    EXPECT_EQ(pool.acquire(sessionRequest(7, 130)), 0);
    EXPECT_EQ(pool.metrics().misses, 1);
}

TEST(PrefixCache, HitIsCappedSoOneSuffixTokenPrefills)
{
    PrefixCachePool pool = tokenPool(1000);
    pool.install(sessionRequest(3, 60, 40)); // 100 cached tokens
    // A prompt shorter than the cached context still pays for one
    // prefill token (TTFT needs a stage to produce the first token).
    EXPECT_EQ(pool.acquire(sessionRequest(3, 50)), 49);
    EXPECT_EQ(pool.metrics().hitTokens, 49);
}

TEST(PrefixCache, SharedPrefixSeedsWarmAndIsNotCheckedOut)
{
    PrefixCachePool pool = tokenPool(1000, "lru", 32);
    EXPECT_EQ(pool.entryCount(), 1u);
    EXPECT_EQ(pool.residentTokens(), 32);

    // Any unseen session's first turn hits the shared prompt; the
    // entry stays resident (it is cross-session, never checked out).
    for (std::int64_t session : {0, 1, 2}) {
        EXPECT_EQ(pool.acquire(sessionRequest(session, 200)), 32);
        EXPECT_EQ(pool.entryCount(), 1u);
        EXPECT_EQ(pool.residentTokens(), 32);
    }
    EXPECT_EQ(pool.metrics().hits, 3);
    EXPECT_EQ(pool.metrics().acquiredBytes, 0);
    expectLedgerClosed(pool);
}

TEST(PrefixCache, OverBudgetContextIsSkipped)
{
    PrefixCachePool pool = tokenPool(100);
    pool.install(sessionRequest(1, 80, 40)); // 120 > 100: skipped
    EXPECT_EQ(pool.entryCount(), 0u);
    EXPECT_EQ(pool.metrics().installs, 0);

    pool.install(sessionRequest(2, 60, 40)); // exactly 100: fits
    EXPECT_EQ(pool.entryCount(), 1u);
    EXPECT_EQ(pool.residentTokens(), 100);
    expectLedgerClosed(pool);
}

TEST(PrefixCache, LruEvictsTheOldestEntry)
{
    PrefixCachePool pool = tokenPool(20, "lru");
    pool.install(sessionRequest(1, 6, 4));  // tick 1
    pool.install(sessionRequest(2, 6, 4));  // tick 2: pool full
    pool.install(sessionRequest(3, 6, 4));  // must evict session 1
    EXPECT_EQ(pool.entryCount(), 2u);
    EXPECT_EQ(pool.metrics().evictions, 1);
    EXPECT_EQ(pool.acquire(sessionRequest(1, 50)), 0);  // gone
    EXPECT_EQ(pool.acquire(sessionRequest(2, 50)), 10); // survived
    expectLedgerClosed(pool);
}

TEST(PrefixCache, LfuSparesTheUsedSharedPrefixWhereLruWouldNot)
{
    // Candidate set where the two stock policies disagree: the
    // shared prefix is the OLDEST tick but the only entry with a
    // hit; the session entries are newer and unused.
    //   lru  -> evicts the shared prefix (oldest tick)
    //   lfu  -> evicts session 1 (useCount 0, oldest of the ties)
    for (const std::string evict : {"lru", "lfu"}) {
        SCOPED_TRACE(evict);
        PrefixCachePool pool = tokenPool(30, evict, 10);
        EXPECT_EQ(pool.acquire(sessionRequest(9, 200)), 10);
        pool.install(sessionRequest(1, 6, 4));
        pool.install(sessionRequest(2, 6, 4)); // full: 30 tokens
        pool.install(sessionRequest(3, 6, 4)); // forces one eviction
        EXPECT_EQ(pool.metrics().evictions, 1);
        // Probe an unseen session: warm iff the shared prefix
        // survived the eviction.
        const std::int64_t shared_hit =
            pool.acquire(sessionRequest(10, 200));
        if (evict == "lru")
            EXPECT_EQ(shared_hit, 0);
        else
            EXPECT_EQ(shared_hit, 10);
        expectLedgerClosed(pool);
    }
}

TEST(PrefixCache, ReinstallReplacesTheStaleEntry)
{
    PrefixCachePool pool = tokenPool(1000);
    pool.install(sessionRequest(5, 60, 40));  // 100 tokens
    pool.install(sessionRequest(5, 130, 60)); // grown to 190
    EXPECT_EQ(pool.entryCount(), 1u);
    EXPECT_EQ(pool.residentTokens(), 190);
    // The stale prefix counts as an eviction: ledger stays closed.
    EXPECT_EQ(pool.metrics().evictions, 1);
    EXPECT_EQ(pool.metrics().evictedBytes, 100);
    expectLedgerClosed(pool);
}

TEST(PrefixCache, ReclaimFreesRequestedHeadroom)
{
    PrefixCachePool pool = tokenPool(1000);
    for (std::int64_t session = 0; session < 5; ++session)
        pool.install(sessionRequest(session, 60, 40));
    EXPECT_EQ(pool.residentTokens(), 500);

    pool.reclaim(150); // live batch needs 150 tokens of KV
    EXPECT_LE(pool.residentTokens(), 350);
    EXPECT_GT(pool.residentTokens(), 0);
    expectLedgerClosed(pool);

    pool.reclaim(10000); // more than resident: drains, no panic
    EXPECT_EQ(pool.residentTokens(), 0);
    EXPECT_EQ(pool.entryCount(), 0u);
    expectLedgerClosed(pool);
}

TEST(PrefixCache, FlushEvictsEverythingLedgerClosed)
{
    // The fleet crash path: flush() must empty the pool through the
    // eviction ledger (flushed bytes count as evictions) and leave
    // every later lookup a miss until something re-installs.
    PrefixCachePool pool = tokenPool(1000, "lru",
                                     /*shared_prefix=*/50);
    for (std::int64_t session = 0; session < 4; ++session)
        pool.install(sessionRequest(session, 60, 40));
    const std::int64_t resident = pool.residentTokens();
    EXPECT_GT(resident, 0);
    const std::int64_t entries =
        static_cast<std::int64_t>(pool.entryCount());
    EXPECT_GE(entries, 4); // 4 sessions (+ shared-prefix seed)
    const std::int64_t before = pool.metrics().evictions;

    pool.flush();
    EXPECT_EQ(pool.entryCount(), 0u);
    EXPECT_EQ(pool.residentTokens(), 0);
    EXPECT_EQ(pool.metrics().residentBytes, 0);
    // Every resident entry went through evict(): the byte ledger
    // stays closed.
    EXPECT_EQ(pool.metrics().evictions, before + entries);
    expectLedgerClosed(pool);

    // Post-flush probes run cold.
    EXPECT_EQ(pool.acquire(sessionRequest(2, 80, 0)), 0);

    // Idempotent, and harmless on a disabled pool.
    pool.flush();
    EXPECT_EQ(pool.entryCount(), 0u);
    PrefixCachePool off = tokenPool(0);
    off.flush();
    expectLedgerClosed(off);
}

TEST(PrefixCache, LedgerStaysClosedUnderChurn)
{
    // Deterministic install/acquire/reclaim churn with a budget far
    // below the working set, across both stock policies.
    for (const std::string &evict : registeredEvictionPolicies()) {
        SCOPED_TRACE(evict);
        PrefixCachePool pool = tokenPool(300, evict, 16);
        for (int i = 0; i < 400; ++i) {
            const std::int64_t session = i % 17;
            const std::int64_t hit =
                pool.acquire(sessionRequest(session, 40 + i % 7));
            EXPECT_LE(hit, 40 + i % 7 - 1);
            pool.install(
                sessionRequest(session, 40 + i % 7, 30 + i % 5));
            if (i % 11 == 0)
                pool.reclaim(64);
            expectLedgerClosed(pool);
            EXPECT_LE(pool.residentTokens(), 300);
        }
        const PrefixCacheMetrics &m = pool.metrics();
        EXPECT_EQ(m.lookups, 400);
        EXPECT_EQ(m.lookups, m.hits + m.misses);
        EXPECT_GT(m.hits, 0);
        EXPECT_GT(m.evictions, 0);
        EXPECT_GT(m.hitRate(), 0.0);
        EXPECT_LE(m.hitRate(), 1.0);
    }
}

TEST(PrefixCache, MetricsMergeSumsEveryCounter)
{
    PrefixCachePool a = tokenPool(1000, "lru", 8);
    PrefixCachePool b = tokenPool(1000, "lfu", 8);
    a.install(sessionRequest(1, 60, 40));
    a.acquire(sessionRequest(1, 130));
    b.install(sessionRequest(2, 30, 20));
    b.acquire(sessionRequest(9, 40)); // shared-prefix hit

    PrefixCacheMetrics merged = a.metrics();
    merged.merge(b.metrics());
    EXPECT_EQ(merged.lookups,
              a.metrics().lookups + b.metrics().lookups);
    EXPECT_EQ(merged.hits, a.metrics().hits + b.metrics().hits);
    EXPECT_EQ(merged.installs,
              a.metrics().installs + b.metrics().installs);
    EXPECT_EQ(merged.installedBytes,
              merged.evictedBytes + merged.acquiredBytes +
                  merged.residentBytes);
}

} // namespace
} // namespace duplex
