/**
 * @file
 * GPU device tests: the H100-class baseline of Section VI.
 */

#include <gtest/gtest.h>

#include "device/gpu.hh"

namespace duplex
{
namespace
{

class GpuTest : public ::testing::Test
{
  protected:
    HbmTiming timing = hbm3Timing();
    HybridDeviceSpec spec =
        h100DeviceSpec(timing, cachedCalibration());
    GpuDevice dev{spec};
};

TEST_F(GpuTest, SpecNumbers)
{
    EXPECT_DOUBLE_EQ(spec.xpu.peakFlops, 990e12);
    EXPECT_EQ(spec.memCapacity, 80ull * kGiB);
    EXPECT_FALSE(spec.hasLowEngine);
    // Calibrated bandwidth close to the 3.35 TB/s datasheet.
    EXPECT_GT(spec.xpu.memBps, 2.7e12);
    EXPECT_LT(spec.xpu.memBps, 3.45e12);
}

TEST_F(GpuTest, RidgePointHigh)
{
    // An H100 needs hundreds of Op/B to leave the memory-bound
    // region — the premise of Fig. 4(b).
    EXPECT_GT(spec.xpu.ridgeOpPerByte(), 200.0);
}

TEST_F(GpuTest, HighOpbRunsPositive)
{
    const DeviceTiming t = dev.runHighOpb({1e12, 1'000'000'000});
    EXPECT_GT(t.time, 0);
    EXPECT_GT(t.energy.dramJ, 0.0);
    EXPECT_GT(t.energy.computeJ, 0.0);
}

TEST_F(GpuTest, AttentionSerializesGroups)
{
    const OpCost decode{1e9, 500'000'000};
    const OpCost prefill{2e12, 100'000'000};
    const AttentionTiming t = dev.runAttention(decode, prefill);
    EXPECT_EQ(t.composed, t.decode.time + t.prefill.time);
}

TEST_F(GpuTest, MoeSkipsColdExperts)
{
    std::vector<ExpertWork> experts(4);
    experts[0] = {8, {1e9, 100'000'000}};
    experts[1] = {0, {0.0, 0}}; // cold: never touched
    experts[2] = {4, {5e8, 100'000'000}};
    experts[3] = {0, {0.0, 0}};
    const DeviceTiming t = dev.runMoe(experts);

    std::vector<ExpertWork> hot{experts[0], experts[2]};
    const DeviceTiming t2 = dev.runMoe(hot);
    EXPECT_EQ(t.time, t2.time);
    EXPECT_DOUBLE_EQ(t.energy.totalJ(), t2.energy.totalJ());
}

TEST_F(GpuTest, MoeGroupedDispatchChargedOnce)
{
    std::vector<ExpertWork> one{{8, {1e9, 100'000'000}}};
    std::vector<ExpertWork> two{{8, {1e9, 100'000'000}},
                                {8, {1e9, 100'000'000}}};
    const PicoSec t1 = dev.runMoe(one).time;
    const PicoSec t2 = dev.runMoe(two).time;
    // Twice the work, one extra dispatch: strictly less than 2x.
    EXPECT_LT(t2, 2 * t1);
    EXPECT_GT(t2, 2 * (t1 - spec.xpu.dispatchOverhead));
}

TEST_F(GpuTest, EmptyMoeIsFree)
{
    const DeviceTiming t = dev.runMoe({});
    EXPECT_EQ(t.time, 0);
    EXPECT_DOUBLE_EQ(t.energy.totalJ(), 0.0);
}

TEST_F(GpuTest, MemoryBoundOperatorTracksBandwidth)
{
    // A pure streaming op should take ~bytes / memBps.
    const Bytes bytes = 3'000'000'000ull;
    const DeviceTiming t = dev.runHighOpb({1.0, bytes});
    const double expect_sec =
        static_cast<double>(bytes) / spec.xpu.memBps;
    EXPECT_NEAR(psToSec(t.time), expect_sec, expect_sec * 0.01);
}

} // namespace
} // namespace duplex
