/**
 * @file
 * PIM engine-spec tests: the Section VI configurations.
 */

#include <gtest/gtest.h>

#include "device/pim.hh"

namespace duplex
{
namespace
{

class PimSpecTest : public ::testing::Test
{
  protected:
    HbmTiming timing = hbm3Timing();
    const DramCalibration &cal = cachedCalibration();
};

TEST_F(PimSpecTest, LogicPimPerStackFlops)
{
    const EngineSpec e = logicPimEngine(timing, cal, 1);
    // 21.3 TFLOPS per stack (Section VI).
    EXPECT_NEAR(e.peakFlops, 21.3e12, 0.1e12);
}

TEST_F(PimSpecTest, LogicPimDeviceFlops)
{
    const EngineSpec e = logicPimEngine(timing, cal, 5);
    EXPECT_NEAR(e.peakFlops, 5 * 21.3e12, 0.5e12);
}

TEST_F(PimSpecTest, LogicPimBandwidthAboveXpu)
{
    const EngineSpec pim = logicPimEngine(timing, cal, 5);
    const double xpu_bps = cal.xpuStackBps(timing) * 5;
    EXPECT_GT(pim.memBps, 2.5 * xpu_bps);
    EXPECT_LT(pim.memBps, 4.0 * xpu_bps);
}

TEST_F(PimSpecTest, LogicPimRidgeNearEight)
{
    const EngineSpec e = logicPimEngine(timing, cal, 1);
    // Designed compute-to-provisioned-bandwidth ratio is 8 Op/B;
    // against sustained bandwidth the ridge sits somewhat higher.
    EXPECT_GT(e.ridgeOpPerByte(), 7.0);
    EXPECT_LT(e.ridgeOpPerByte(), 13.0);
}

TEST_F(PimSpecTest, BankPimSixteenX)
{
    const EngineSpec e = bankPimEngine(timing, cal, 1);
    const double provisioned = 16.0 * timing.stackPeakBytesPerSec();
    EXPECT_NEAR(e.peakFlops, provisioned, 1e9); // peak Op/B = 1
    EXPECT_NEAR(e.memBps, provisioned * cal.pimStaggeredEff, 1e9);
}

TEST_F(PimSpecTest, BankPimMoreBandwidthLessCompute)
{
    const EngineSpec bank = bankPimEngine(timing, cal, 5);
    const EngineSpec logic = logicPimEngine(timing, cal, 5);
    EXPECT_GT(bank.memBps, 3.0 * logic.memBps);
    EXPECT_LT(bank.peakFlops, logic.peakFlops);
}

TEST_F(PimSpecTest, BankGroupPimMirrorsLogicPim)
{
    const EngineSpec bg = bankGroupPimEngine(timing, cal, 5);
    const EngineSpec logic = logicPimEngine(timing, cal, 5);
    EXPECT_DOUBLE_EQ(bg.peakFlops, logic.peakFlops);
    EXPECT_DOUBLE_EQ(bg.memBps, logic.memBps);
}

TEST_F(PimSpecTest, VariantPathsAndClasses)
{
    EXPECT_EQ(pimVariantPath(PimVariant::LogicPim),
              DramPath::LogicDie);
    EXPECT_EQ(pimVariantPath(PimVariant::BankPim),
              DramPath::BankLocal);
    EXPECT_EQ(pimVariantPath(PimVariant::BankGroupPim),
              DramPath::BankGroup);
    EXPECT_EQ(pimVariantClass(PimVariant::LogicPim),
              ComputeClass::LogicPim);
}

TEST_F(PimSpecTest, VariantDescsCarryArea)
{
    AreaModel area;
    const auto logic =
        pimVariantDesc(PimVariant::LogicPim, timing, cal, area);
    const auto bank =
        pimVariantDesc(PimVariant::BankPim, timing, cal, area);
    const auto bg =
        pimVariantDesc(PimVariant::BankGroupPim, timing, cal, area);
    EXPECT_NEAR(logic.areaMm2, 17.80, 0.05);
    EXPECT_GT(bg.areaMm2, logic.areaMm2);
    EXPECT_GT(bank.areaMm2, logic.areaMm2 * 0.8);
    // EDAP descs must not fold dispatch overhead into delay.
    EXPECT_EQ(logic.engine.dispatchOverhead, 0);
}

} // namespace
} // namespace duplex
