/**
 * @file
 * Energy-model tests: the data-path orderings behind Fig. 15 and the
 * EDAP machinery behind Fig. 8.
 */

#include <gtest/gtest.h>

#include "energy/edap.hh"
#include "energy/energy.hh"

namespace duplex
{
namespace
{

TEST(EnergyModel, PathOrdering)
{
    EnergyModel e;
    // The further data travels, the more it costs: bank-local <
    // bank-group < logic die < interposer (Section IV-C, Fig. 15).
    const double bank = e.dramPjPerByte(DramPath::BankLocal);
    const double bg = e.dramPjPerByte(DramPath::BankGroup);
    const double logic = e.dramPjPerByte(DramPath::LogicDie);
    const double xpu = e.dramPjPerByte(DramPath::XpuInterposer);
    EXPECT_LT(bank, bg);
    EXPECT_LT(bg, logic);
    EXPECT_LT(logic, xpu);
}

TEST(EnergyModel, LogicPimSavesVsInterposer)
{
    EnergyModel e;
    const double logic = e.dramPjPerByte(DramPath::LogicDie);
    const double xpu = e.dramPjPerByte(DramPath::XpuInterposer);
    // Skipping PHY + interposer saves a large fraction — the root
    // of the paper's 28-42% energy reduction.
    EXPECT_LT(logic, 0.75 * xpu);
    EXPECT_GT(logic, 0.40 * xpu);
}

TEST(EnergyModel, XpuPathNearPublishedHbmNumbers)
{
    EnergyModel e;
    // HBM3 access energy is commonly cited at 3.5-4 pJ/bit.
    const double pj_per_bit =
        e.dramPjPerByte(DramPath::XpuInterposer) / 8.0;
    EXPECT_GT(pj_per_bit, 3.0);
    EXPECT_LT(pj_per_bit, 4.5);
}

TEST(EnergyModel, EnergyScalesLinearly)
{
    EnergyModel e;
    const double one = e.dramEnergyJ(DramPath::LogicDie, 1000);
    const double two = e.dramEnergyJ(DramPath::LogicDie, 2000);
    EXPECT_NEAR(two, 2.0 * one, 1e-15);
}

TEST(EnergyModel, ComputeClassOrdering)
{
    EnergyModel e;
    // DRAM-process logic is less efficient than 7 nm logic.
    EXPECT_LT(e.computePjPerFlop(ComputeClass::LogicPim),
              e.computePjPerFlop(ComputeClass::BankPim));
    EXPECT_LT(e.computePjPerFlop(ComputeClass::LogicPim),
              e.computePjPerFlop(ComputeClass::Xpu));
}

TEST(Edap, DelayEnergyAreaComposition)
{
    PimEngineDesc d;
    d.engine.peakFlops = 1e12;
    d.engine.memBps = 1e11;
    d.path = DramPath::LogicDie;
    d.cls = ComputeClass::LogicPim;
    d.areaMm2 = 10.0;
    EnergyModel e;
    GemmShape g{4, 1024, 1024};
    const EdapResult r = evaluateEdap(d, g, e);
    EXPECT_GT(r.delaySec, 0.0);
    EXPECT_GT(r.energyJ, 0.0);
    EXPECT_DOUBLE_EQ(r.areaMm2, 10.0);
    EXPECT_NEAR(r.edap(), r.delaySec * r.energyJ * r.areaMm2,
                1e-20);
}

TEST(Edap, NormalizationMapsWorstToOne)
{
    std::vector<EdapResult> results(3);
    results[0].delaySec = 1.0;
    results[0].energyJ = 1.0;
    results[0].areaMm2 = 1.0;
    results[1].delaySec = 2.0;
    results[1].energyJ = 1.0;
    results[1].areaMm2 = 1.0;
    results[2].delaySec = 0.5;
    results[2].energyJ = 1.0;
    results[2].areaMm2 = 1.0;
    const auto norm = normalizeEdap(results);
    EXPECT_DOUBLE_EQ(norm[1], 1.0);
    EXPECT_DOUBLE_EQ(norm[0], 0.5);
    EXPECT_DOUBLE_EQ(norm[2], 0.25);
}

TEST(EnergyBreakdown, Accumulates)
{
    EnergyBreakdown a{1.0, 2.0};
    EnergyBreakdown b{0.5, 0.25};
    a += b;
    EXPECT_DOUBLE_EQ(a.dramJ, 1.5);
    EXPECT_DOUBLE_EQ(a.computeJ, 2.25);
    EXPECT_DOUBLE_EQ(a.totalJ(), 3.75);
}

} // namespace
} // namespace duplex
