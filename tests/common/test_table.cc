/**
 * @file
 * Unit tests for the table writer.
 */

#include <gtest/gtest.h>

#include "common/table.hh"

namespace duplex
{
namespace
{

TEST(Table, RendersHeaderAndRows)
{
    Table t({"name", "value"});
    t.startRow();
    t.cell("alpha");
    t.cell(static_cast<std::int64_t>(42));
    const std::string out = t.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
    EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(Table, AlignsColumns)
{
    Table t({"a"});
    t.startRow();
    t.cell("longvalue");
    t.startRow();
    t.cell("x");
    const std::string out = t.str();
    // Every line should have equal length (aligned columns).
    std::size_t first_len = out.find('\n');
    std::size_t pos = first_len + 1;
    while (pos < out.size()) {
        const std::size_t next = out.find('\n', pos);
        ASSERT_NE(next, std::string::npos);
        EXPECT_EQ(next - pos, first_len);
        pos = next + 1;
    }
}

TEST(Table, FormatsDoubles)
{
    Table t({"v"});
    t.startRow();
    t.cell(3.14159, 2);
    EXPECT_NE(t.str().find("3.14"), std::string::npos);
    EXPECT_EQ(t.str().find("3.142"), std::string::npos);
}

TEST(FormatDouble, FixedDigits)
{
    EXPECT_EQ(formatDouble(1.5, 3), "1.500");
    EXPECT_EQ(formatDouble(2.0, 0), "2");
    EXPECT_EQ(formatDouble(-0.25, 2), "-0.25");
}

TEST(Table, ShortRowRendersEmptyCells)
{
    Table t({"a", "b"});
    t.startRow();
    t.cell("only");
    const std::string out = t.str();
    EXPECT_NE(out.find("only"), std::string::npos);
}

} // namespace
} // namespace duplex
