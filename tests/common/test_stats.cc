/**
 * @file
 * Unit tests for the percentile accumulator.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace duplex
{
namespace
{

TEST(SampleStats, EmptyIsZero)
{
    SampleStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
    EXPECT_EQ(s.percentile(50), 0.0);
}

TEST(SampleStats, SingleSample)
{
    SampleStats s;
    s.add(42.0);
    EXPECT_EQ(s.mean(), 42.0);
    EXPECT_EQ(s.min(), 42.0);
    EXPECT_EQ(s.max(), 42.0);
    EXPECT_EQ(s.percentile(0), 42.0);
    EXPECT_EQ(s.percentile(100), 42.0);
}

TEST(SampleStats, MeanMinMax)
{
    SampleStats s;
    for (double v : {3.0, 1.0, 2.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
    EXPECT_DOUBLE_EQ(s.sum(), 6.0);
}

TEST(SampleStats, MedianOfOddCount)
{
    SampleStats s;
    for (double v : {5.0, 1.0, 3.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(SampleStats, MedianInterpolatesEvenCount)
{
    SampleStats s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.median(), 2.5);
}

TEST(SampleStats, PercentileInterpolation)
{
    SampleStats s;
    for (int i = 0; i <= 100; ++i)
        s.add(static_cast<double>(i));
    EXPECT_NEAR(s.percentile(90), 90.0, 1e-9);
    EXPECT_NEAR(s.percentile(99), 99.0, 1e-9);
    EXPECT_NEAR(s.percentile(50), 50.0, 1e-9);
}

TEST(SampleStats, PercentileMonotone)
{
    SampleStats s;
    // Unordered insertion, heavy tail.
    for (double v : {10.0, 1.0, 1.0, 1.0, 100.0, 2.0, 3.0, 50.0})
        s.add(v);
    double prev = s.percentile(0);
    for (int p = 5; p <= 100; p += 5) {
        const double cur = s.percentile(p);
        EXPECT_GE(cur, prev);
        prev = cur;
    }
}

TEST(SampleStats, AddAfterQueryResorts)
{
    SampleStats s;
    s.add(2.0);
    EXPECT_DOUBLE_EQ(s.max(), 2.0);
    s.add(1.0);
    s.add(5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
}

TEST(SampleStats, Merge)
{
    SampleStats a;
    a.add(1.0);
    a.add(2.0);
    SampleStats b;
    b.add(3.0);
    b.add(4.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.5);
    EXPECT_DOUBLE_EQ(a.max(), 4.0);
}

TEST(SampleStats, MergePlusPercentileMatchesAddOneAtATime)
{
    // Merge reserves, appends, and marks the destination unsorted
    // exactly once; the queryable state must be indistinguishable
    // from adding every sample individually — including a merge
    // performed after the destination was already sorted by a
    // query, and a merge of an empty accumulator (a no-op).
    SampleStats merged;
    SampleStats one_at_a_time;
    SampleStats chunk;
    for (double v : {9.0, 1.0, 4.0}) {
        merged.add(v);
        one_at_a_time.add(v);
    }
    EXPECT_DOUBLE_EQ(merged.percentile(50), 4.0); // forces a sort
    for (double v : {2.0, 8.0, 0.5, 7.0}) {
        chunk.add(v);
        one_at_a_time.add(v);
    }
    merged.merge(chunk);
    merged.merge(SampleStats{}); // empty merge: no-op
    EXPECT_EQ(merged.count(), one_at_a_time.count());
    EXPECT_DOUBLE_EQ(merged.sum(), one_at_a_time.sum());
    EXPECT_DOUBLE_EQ(merged.min(), one_at_a_time.min());
    EXPECT_DOUBLE_EQ(merged.max(), one_at_a_time.max());
    for (int p = 0; p <= 100; p += 10)
        EXPECT_DOUBLE_EQ(merged.percentile(p),
                         one_at_a_time.percentile(p))
            << "p" << p;
}

TEST(BoundedStatsTest, ExactCountSumAndExtremes)
{
    BoundedStats s({100.0, 10});
    for (double v : {3.0, 97.0, 12.0, 55.0})
        s.add(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.sum(), 167.0);
    EXPECT_DOUBLE_EQ(s.mean(), 41.75);
    EXPECT_DOUBLE_EQ(s.min(), 3.0);
    EXPECT_DOUBLE_EQ(s.max(), 97.0);
}

TEST(BoundedStatsTest, EmptyIsZero)
{
    BoundedStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.percentile(50), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.fractionAtMost(1.0), 1.0);
}

TEST(BoundedStatsTest, PercentileWithinBinResolution)
{
    const BoundedSpec spec{1000.0, 1000}; // 1.0-wide bins
    BoundedStats bounded(spec);
    SampleStats exact;
    // Deterministic pseudo-random-ish spread.
    for (int i = 0; i < 5000; ++i) {
        const double v =
            static_cast<double>((i * 7919) % 997) + 0.25;
        bounded.add(v);
        exact.add(v);
    }
    for (double p : {1.0, 25.0, 50.0, 90.0, 99.0})
        EXPECT_NEAR(bounded.percentile(p), exact.percentile(p),
                    1.0)
            << "p" << p;
    EXPECT_NEAR(bounded.fractionAtMost(500.0),
                exact.fractionAtMost(500.0), 0.01);
}

TEST(BoundedStatsTest, PercentileMonotoneAndClampedToRange)
{
    BoundedStats s({10.0, 4}); // coarse bins
    for (double v : {1.0, 1.2, 3.3, 7.7, 9.9})
        s.add(v);
    double prev = s.percentile(0);
    EXPECT_GE(prev, s.min());
    for (int p = 10; p <= 100; p += 10) {
        const double cur = s.percentile(p);
        EXPECT_GE(cur, prev);
        prev = cur;
    }
    EXPECT_LE(s.percentile(100), s.max());
}

TEST(BoundedStatsTest, OverflowBinReportsExactMax)
{
    BoundedStats s({10.0, 10});
    s.add(5.0);
    s.add(123456.0); // beyond the binned range
    EXPECT_EQ(s.count(), 2u);
    EXPECT_DOUBLE_EQ(s.max(), 123456.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 123456.0);
    EXPECT_DOUBLE_EQ(s.fractionAtMost(123456.0), 1.0);
}

TEST(BoundedStatsTest, FractionAtMostInsideOverflowRange)
{
    // A threshold between maxValue and the exact max must credit
    // every regular-bin sample and interpolate the overflow
    // samples over their observed range — not drop them.
    BoundedStats s({10.0, 10});
    s.add(5.0);
    s.add(15.0);
    s.add(20.0);
    // (17 - 10) / (20 - 10) = 0.7 of the 2 overflow samples -> 1,
    // plus the one regular sample: 2 of 3.
    EXPECT_NEAR(s.fractionAtMost(17.0), 2.0 / 3.0, 1e-12);
    EXPECT_GE(s.fractionAtMost(19.9), s.fractionAtMost(10.5));
    EXPECT_DOUBLE_EQ(s.fractionAtMost(20.0), 1.0);
}

TEST(SampleStats, FractionAtMost)
{
    SampleStats s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.fractionAtMost(0.5), 0.0);
    EXPECT_DOUBLE_EQ(s.fractionAtMost(1.0), 0.25);
    EXPECT_DOUBLE_EQ(s.fractionAtMost(2.5), 0.5);
    EXPECT_DOUBLE_EQ(s.fractionAtMost(4.0), 1.0);
    EXPECT_DOUBLE_EQ(s.fractionAtMost(9.0), 1.0);
}

TEST(SampleStats, FractionAtMostVacuouslyOneWhenEmpty)
{
    SampleStats s;
    EXPECT_DOUBLE_EQ(s.fractionAtMost(0.0), 1.0);
}

TEST(SampleStats, Clear)
{
    SampleStats s;
    s.add(1.0);
    s.clear();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.sum(), 0.0);
}

} // namespace
} // namespace duplex
