/**
 * @file
 * Unit tests for the percentile accumulator.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace duplex
{
namespace
{

TEST(SampleStats, EmptyIsZero)
{
    SampleStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
    EXPECT_EQ(s.percentile(50), 0.0);
}

TEST(SampleStats, SingleSample)
{
    SampleStats s;
    s.add(42.0);
    EXPECT_EQ(s.mean(), 42.0);
    EXPECT_EQ(s.min(), 42.0);
    EXPECT_EQ(s.max(), 42.0);
    EXPECT_EQ(s.percentile(0), 42.0);
    EXPECT_EQ(s.percentile(100), 42.0);
}

TEST(SampleStats, MeanMinMax)
{
    SampleStats s;
    for (double v : {3.0, 1.0, 2.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
    EXPECT_DOUBLE_EQ(s.sum(), 6.0);
}

TEST(SampleStats, MedianOfOddCount)
{
    SampleStats s;
    for (double v : {5.0, 1.0, 3.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(SampleStats, MedianInterpolatesEvenCount)
{
    SampleStats s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.median(), 2.5);
}

TEST(SampleStats, PercentileInterpolation)
{
    SampleStats s;
    for (int i = 0; i <= 100; ++i)
        s.add(static_cast<double>(i));
    EXPECT_NEAR(s.percentile(90), 90.0, 1e-9);
    EXPECT_NEAR(s.percentile(99), 99.0, 1e-9);
    EXPECT_NEAR(s.percentile(50), 50.0, 1e-9);
}

TEST(SampleStats, PercentileMonotone)
{
    SampleStats s;
    // Unordered insertion, heavy tail.
    for (double v : {10.0, 1.0, 1.0, 1.0, 100.0, 2.0, 3.0, 50.0})
        s.add(v);
    double prev = s.percentile(0);
    for (int p = 5; p <= 100; p += 5) {
        const double cur = s.percentile(p);
        EXPECT_GE(cur, prev);
        prev = cur;
    }
}

TEST(SampleStats, AddAfterQueryResorts)
{
    SampleStats s;
    s.add(2.0);
    EXPECT_DOUBLE_EQ(s.max(), 2.0);
    s.add(1.0);
    s.add(5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
}

TEST(SampleStats, Merge)
{
    SampleStats a;
    a.add(1.0);
    a.add(2.0);
    SampleStats b;
    b.add(3.0);
    b.add(4.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.5);
    EXPECT_DOUBLE_EQ(a.max(), 4.0);
}

TEST(SampleStats, FractionAtMost)
{
    SampleStats s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.fractionAtMost(0.5), 0.0);
    EXPECT_DOUBLE_EQ(s.fractionAtMost(1.0), 0.25);
    EXPECT_DOUBLE_EQ(s.fractionAtMost(2.5), 0.5);
    EXPECT_DOUBLE_EQ(s.fractionAtMost(4.0), 1.0);
    EXPECT_DOUBLE_EQ(s.fractionAtMost(9.0), 1.0);
}

TEST(SampleStats, FractionAtMostVacuouslyOneWhenEmpty)
{
    SampleStats s;
    EXPECT_DOUBLE_EQ(s.fractionAtMost(0.0), 1.0);
}

TEST(SampleStats, Clear)
{
    SampleStats s;
    s.add(1.0);
    s.clear();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.sum(), 0.0);
}

} // namespace
} // namespace duplex
