/**
 * @file
 * Unit tests for the flag parser.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/argparse.hh"

namespace duplex
{
namespace
{

std::vector<char *>
argvOf(std::vector<std::string> &args)
{
    std::vector<char *> argv;
    argv.reserve(args.size());
    for (auto &a : args)
        argv.push_back(a.data());
    return argv;
}

TEST(ArgParser, DefaultsApply)
{
    ArgParser p;
    p.addFlag("model", "model name", "mixtral");
    std::vector<std::string> args{"prog"};
    auto argv = argvOf(args);
    p.parse(static_cast<int>(argv.size()), argv.data());
    EXPECT_EQ(p.getString("model"), "mixtral");
}

TEST(ArgParser, EqualsForm)
{
    ArgParser p;
    p.addFlag("batch", "batch size", "32");
    std::vector<std::string> args{"prog", "--batch=64"};
    auto argv = argvOf(args);
    p.parse(static_cast<int>(argv.size()), argv.data());
    EXPECT_EQ(p.getInt("batch"), 64);
}

TEST(ArgParser, SpaceForm)
{
    ArgParser p;
    p.addFlag("qps", "arrival rate", "0");
    std::vector<std::string> args{"prog", "--qps", "12.5"};
    auto argv = argvOf(args);
    p.parse(static_cast<int>(argv.size()), argv.data());
    EXPECT_DOUBLE_EQ(p.getDouble("qps"), 12.5);
}

TEST(ArgParser, BoolValues)
{
    ArgParser p;
    p.addFlag("a", "", "true");
    p.addFlag("b", "", "0");
    p.addFlag("c", "", "yes");
    std::vector<std::string> args{"prog"};
    auto argv = argvOf(args);
    p.parse(static_cast<int>(argv.size()), argv.data());
    EXPECT_TRUE(p.getBool("a"));
    EXPECT_FALSE(p.getBool("b"));
    EXPECT_TRUE(p.getBool("c"));
}

TEST(ArgParser, BareBooleanSwitch)
{
    ArgParser p;
    p.addFlag("list-systems", "", "false");
    p.addFlag("system", "", "");
    std::vector<std::string> args{"prog", "--list-systems"};
    auto argv = argvOf(args);
    p.parse(static_cast<int>(argv.size()), argv.data());
    EXPECT_TRUE(p.getBool("list-systems"));
}

TEST(ArgParser, BareBooleanSwitchBeforeAnotherFlag)
{
    ArgParser p;
    p.addFlag("verbose", "", "false");
    p.addFlag("batch", "", "32");
    std::vector<std::string> args{"prog", "--verbose",
                                  "--batch=8"};
    auto argv = argvOf(args);
    p.parse(static_cast<int>(argv.size()), argv.data());
    EXPECT_TRUE(p.getBool("verbose"));
    EXPECT_EQ(p.getInt("batch"), 8);
}

TEST(ArgParser, BooleanFlagStillTakesExplicitValue)
{
    ArgParser p;
    p.addFlag("verbose", "", "false");
    std::vector<std::string> args{"prog", "--verbose", "false"};
    auto argv = argvOf(args);
    p.parse(static_cast<int>(argv.size()), argv.data());
    EXPECT_FALSE(p.getBool("verbose"));
}

TEST(ArgParser, BareSwitchAfterNonCanonicalValue)
{
    // Boolean-ness comes from the declared default, not the live
    // value: setting "yes" must not demote the flag to value-taking.
    ArgParser p;
    p.addFlag("verbose", "", "false");
    std::vector<std::string> args{"prog", "--verbose=yes",
                                  "--verbose"};
    auto argv = argvOf(args);
    p.parse(static_cast<int>(argv.size()), argv.data());
    EXPECT_TRUE(p.getBool("verbose"));
}

TEST(ArgParser, BareSwitchDoesNotSwallowNonBooleanToken)
{
    // "--verbose mixtral" must not silently disable the switch;
    // the stray token surfaces as a positional-argument error.
    ArgParser p;
    p.addFlag("verbose", "", "false");
    std::vector<std::string> args{"prog", "--verbose", "mixtral"};
    auto argv = argvOf(args);
    EXPECT_EXIT(p.parse(static_cast<int>(argv.size()),
                        argv.data()),
                ::testing::ExitedWithCode(1),
                "positional arguments are not supported");
}

TEST(ArgParser, MultipleFlags)
{
    ArgParser p;
    p.addFlag("x", "", "1");
    p.addFlag("y", "", "2");
    std::vector<std::string> args{"prog", "--y=20", "--x", "10"};
    auto argv = argvOf(args);
    p.parse(static_cast<int>(argv.size()), argv.data());
    EXPECT_EQ(p.getInt("x"), 10);
    EXPECT_EQ(p.getInt("y"), 20);
}

} // namespace
} // namespace duplex
