/**
 * @file
 * Unit tests for the deterministic RNG and its distributions.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hh"

namespace duplex
{
namespace
{

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(7);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive)
{
    Rng rng(3);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniformInt(5, 9);
        EXPECT_GE(v, 5);
        EXPECT_LE(v, 9);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntSingleton)
{
    Rng rng(3);
    EXPECT_EQ(rng.uniformInt(4, 4), 4);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(11);
    const int n = 200000;
    double sum = 0.0;
    double sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianShifted)
{
    Rng rng(13);
    const int n = 50000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(100.0, 10.0);
    EXPECT_NEAR(sum / n, 100.0, 0.5);
}

TEST(Rng, TruncatedGaussianRespectsMinimum)
{
    Rng rng(17);
    for (int i = 0; i < 5000; ++i)
        EXPECT_GE(rng.truncatedGaussianInt(10.0, 50.0, 4), 4);
}

TEST(Rng, TruncatedGaussianMeanApprox)
{
    Rng rng(19);
    const int n = 50000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(
            rng.truncatedGaussianInt(1000.0, 100.0, 1));
    // Truncation at 1 barely matters 10 sigma away.
    EXPECT_NEAR(sum / n, 1000.0, 5.0);
}

TEST(Rng, ExponentialMeanMatchesRate)
{
    Rng rng(23);
    const double rate = 8.0;
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(rate);
    EXPECT_NEAR(sum / n, 1.0 / rate, 0.005);
}

TEST(Rng, ChooseDistinctReturnsDistinct)
{
    Rng rng(29);
    for (int trial = 0; trial < 1000; ++trial) {
        auto chosen = rng.chooseDistinct(8, 2);
        ASSERT_EQ(chosen.size(), 2u);
        EXPECT_NE(chosen[0], chosen[1]);
        for (int c : chosen) {
            EXPECT_GE(c, 0);
            EXPECT_LT(c, 8);
        }
    }
}

TEST(Rng, ChooseDistinctFullSet)
{
    Rng rng(31);
    auto chosen = rng.chooseDistinct(5, 5);
    std::sort(chosen.begin(), chosen.end());
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(chosen[i], i);
}

TEST(Rng, ChooseDistinctUniformish)
{
    Rng rng(37);
    std::vector<int> counts(8, 0);
    const int trials = 40000;
    for (int t = 0; t < trials; ++t)
        for (int c : rng.chooseDistinct(8, 2))
            ++counts[c];
    // Each expert should see about trials * 2 / 8 selections.
    const double expected = trials * 2.0 / 8.0;
    for (int c : counts)
        EXPECT_NEAR(c, expected, expected * 0.05);
}

/** Parameterized sweep: chooseDistinct(n, k) stays in bounds. */
class ChooseDistinctSweep
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(ChooseDistinctSweep, BoundsAndDistinctness)
{
    const auto [n, k] = GetParam();
    Rng rng(41);
    for (int trial = 0; trial < 200; ++trial) {
        auto chosen = rng.chooseDistinct(n, k);
        ASSERT_EQ(chosen.size(), static_cast<std::size_t>(k));
        std::set<int> unique(chosen.begin(), chosen.end());
        EXPECT_EQ(unique.size(), chosen.size());
        for (int c : chosen) {
            EXPECT_GE(c, 0);
            EXPECT_LT(c, n);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Gates, ChooseDistinctSweep,
    ::testing::Values(std::pair{8, 2}, std::pair{64, 2},
                      std::pair{8, 1}, std::pair{64, 8},
                      std::pair{2, 2}, std::pair{16, 4}));

} // namespace
} // namespace duplex
