/**
 * @file
 * Duplex hybrid-device tests: Op/B-driven engine selection and
 * co-processing behaviour (Sections IV-D, V-B).
 */

#include <gtest/gtest.h>

#include "core/duplex_device.hh"
#include "workload/experts.hh"

namespace duplex
{
namespace
{

class DuplexDeviceTest : public ::testing::Test
{
  protected:
    HbmTiming timing = hbm3Timing();
    const DramCalibration &cal = cachedCalibration();
    LayerCosts costs{mixtralConfig()};

    HybridDeviceSpec
    spec(bool co)
    {
        return duplexDeviceSpec(timing, cal, co);
    }
};

TEST_F(DuplexDeviceTest, SpecHasBothEngines)
{
    const auto s = spec(false);
    EXPECT_TRUE(s.hasLowEngine);
    EXPECT_EQ(s.memCapacity, 80ull * kGiB); // same as the GPU
    EXPECT_GT(s.low.memBps, s.xpu.memBps);
    EXPECT_LT(s.low.peakFlops, s.xpu.peakFlops);
}

TEST_F(DuplexDeviceTest, FactoryBuildsRightClass)
{
    auto gpu = makeDevice(h100DeviceSpec(timing, cal));
    EXPECT_NE(dynamic_cast<GpuDevice *>(gpu.get()), nullptr);
    auto dup = makeDevice(spec(false));
    EXPECT_NE(dynamic_cast<HybridDevice *>(dup.get()), nullptr);
}

TEST_F(DuplexDeviceTest, HighOpbStaysOnXpu)
{
    HybridDevice dev(spec(false));
    GpuDevice gpu(h100DeviceSpec(timing, cal));
    const OpCost fc = costs.qkv(64);
    EXPECT_EQ(dev.runHighOpb(fc).time, gpu.runHighOpb(fc).time);
}

TEST_F(DuplexDeviceTest, DecodeAttentionPicksLowEngine)
{
    HybridDevice dev(spec(false));
    GpuDevice gpu(h100DeviceSpec(timing, cal));
    StageShape stage;
    for (int i = 0; i < 32; ++i)
        stage.decodeContexts.push_back(2048);
    const OpCost decode = costs.attentionDecode(stage);
    const auto hybrid_t = dev.runAttention(decode, {});
    const auto gpu_t = gpu.runAttention(decode, {});
    // Logic-PIM's ~3x bandwidth advantage must show.
    EXPECT_LT(hybrid_t.composed * 2, gpu_t.composed);
}

TEST_F(DuplexDeviceTest, PrefillAttentionStaysOnXpu)
{
    HybridDevice dev(spec(false));
    GpuDevice gpu(h100DeviceSpec(timing, cal));
    StageShape stage;
    stage.prefillLengths.push_back(4096);
    const OpCost prefill = costs.attentionPrefill(stage);
    const auto hybrid_t = dev.runAttention({}, prefill);
    const auto gpu_t = gpu.runAttention({}, prefill);
    EXPECT_EQ(hybrid_t.composed, gpu_t.composed);
}

TEST_F(DuplexDeviceTest, CoProcessedAttentionOverlaps)
{
    StageShape stage;
    for (int i = 0; i < 32; ++i)
        stage.decodeContexts.push_back(2048);
    stage.prefillLengths.push_back(2048);
    const OpCost decode = costs.attentionDecode(stage);
    const OpCost prefill = costs.attentionPrefill(stage);

    HybridDevice serial(spec(false));
    HybridDevice co(spec(true));
    const auto serial_t = serial.runAttention(decode, prefill);
    const auto co_t = co.runAttention(decode, prefill);
    EXPECT_EQ(co_t.composed,
              std::max(co_t.decode.time, co_t.prefill.time));
    EXPECT_LT(co_t.composed, serial_t.composed);
    // Energy is the same work, just overlapped.
    const double serial_j = serial_t.decode.energy.totalJ() +
                            serial_t.prefill.energy.totalJ();
    const double co_j = co_t.decode.energy.totalJ() +
                        co_t.prefill.energy.totalJ();
    EXPECT_NEAR(co_j, serial_j, serial_j * 0.25);
}

TEST_F(DuplexDeviceTest, DecodeMoeGoesLow)
{
    HybridDevice dev(spec(false));
    // Decoding-only stage: 16 tokens per expert => low Op/B.
    std::vector<ExpertWork> experts;
    for (int e = 0; e < 8; ++e)
        experts.push_back({16, costs.expertFfn(16)});
    dev.runMoe(experts);
    EXPECT_EQ(dev.lastExpertsOnLow(), 8);
}

TEST_F(DuplexDeviceTest, MixedMoeGoesXpu)
{
    HybridDevice dev(spec(false));
    // Mixed stage: ~1k tokens per expert => high Op/B.
    std::vector<ExpertWork> experts;
    for (int e = 0; e < 8; ++e)
        experts.push_back({1100, costs.expertFfn(1100)});
    dev.runMoe(experts);
    EXPECT_EQ(dev.lastExpertsOnLow(), 0);
}

TEST_F(DuplexDeviceTest, CoProcessingNeverSlower)
{
    LayerCosts glam_costs{glamConfig()};
    const auto s_serial = spec(false);
    const auto s_co = spec(true);
    HybridDevice serial(s_serial);
    HybridDevice co(s_co);
    ExpertTimeLut lut(s_co.xpu, s_co.low, glam_costs.expertFfn(1),
                      glam_costs.expertFfn(2));
    co.setExpertLut(&lut);

    Rng rng(3);
    ExpertSelector sel(64, 2);
    for (int trial = 0; trial < 20; ++trial) {
        const auto hist = sel.sample(rng, 128);
        std::vector<ExpertWork> experts;
        for (auto h : hist)
            experts.push_back({h, glam_costs.expertFfn(h)});
        const PicoSec t_serial = serial.runMoe(experts).time;
        const PicoSec t_co = co.runMoe(experts).time;
        EXPECT_LE(t_co, t_serial);
    }
}

TEST_F(DuplexDeviceTest, CoProcessingSplitsSkewedLoad)
{
    const auto s = spec(true);
    HybridDevice dev(s);
    ExpertTimeLut lut(s.xpu, s.low, costs.expertFfn(1),
                      costs.expertFfn(2));
    dev.setExpertLut(&lut);
    // One prefill-heavy expert plus cold decode experts.
    std::vector<ExpertWork> experts;
    experts.push_back({4096, costs.expertFfn(4096)});
    for (int e = 0; e < 7; ++e)
        experts.push_back({16, costs.expertFfn(16)});
    dev.runMoe(experts);
    EXPECT_GT(dev.lastExpertsOnLow(), 0);
    EXPECT_LT(dev.lastExpertsOnLow(), 8);
}

TEST_F(DuplexDeviceTest, EnergyUsesLowPathWhenOnLow)
{
    HybridDevice dev(spec(false));
    GpuDevice gpu(h100DeviceSpec(timing, cal));
    std::vector<ExpertWork> experts;
    for (int e = 0; e < 8; ++e)
        experts.push_back({16, costs.expertFfn(16)});
    const double dup_j = dev.runMoe(experts).energy.dramJ;
    const double gpu_j = gpu.runMoe(experts).energy.dramJ;
    // Logic-PIM skips the interposer: visibly lower DRAM energy.
    EXPECT_LT(dup_j, 0.8 * gpu_j);
}

} // namespace
} // namespace duplex
