/**
 * @file
 * Expert co-processing partition tests, including the key property:
 * the co-processed makespan never exceeds either single-engine
 * execution.
 */

#include <gtest/gtest.h>

#include "core/coprocess.hh"
#include "device/gpu.hh"
#include "device/pim.hh"
#include "workload/experts.hh"

namespace duplex
{
namespace
{

class CoprocessTest : public ::testing::Test
{
  protected:
    HbmTiming timing = hbm3Timing();
    const DramCalibration &cal = cachedCalibration();
    EngineSpec xpu = h100Engine(timing, cal);
    EngineSpec low = logicPimEngine(timing, cal, 5);
    LayerCosts costs{mixtralConfig()};
    ExpertTimeLut lut{xpu, low, costs.expertFfn(1),
                      costs.expertFfn(2), 8192};

    std::vector<ExpertWork>
    makeExperts(const std::vector<std::int64_t> &tokens)
    {
        std::vector<ExpertWork> w;
        for (auto t : tokens)
            w.push_back({t, costs.expertFfn(t)});
        return w;
    }

    PicoSec
    allOn(const EngineSpec &e,
          const std::vector<ExpertWork> &experts)
    {
        PicoSec total = e.dispatchOverhead;
        for (const auto &w : experts) {
            if (w.tokens == 0)
                continue;
            total += operatorTimeNoOverhead(e, w.cost.flops,
                                            w.cost.bytes);
        }
        return total;
    }
};

TEST_F(CoprocessTest, EmptyInputEmptyPartition)
{
    const auto part = partitionExperts({}, lut, xpu, low);
    EXPECT_EQ(part.sorted.size(), 0u);
    EXPECT_EQ(part.makespan(), 0);
}

TEST_F(CoprocessTest, ZeroTokenExpertsDropped)
{
    const auto part = partitionExperts(
        makeExperts({0, 4, 0, 8}), lut, xpu, low);
    EXPECT_EQ(part.sorted.size(), 2u);
}

TEST_F(CoprocessTest, SortedAscending)
{
    const auto part = partitionExperts(
        makeExperts({30, 5, 12, 1, 22}), lut, xpu, low);
    for (std::size_t i = 1; i < part.sorted.size(); ++i)
        EXPECT_LE(part.sorted[i - 1].tokens,
                  part.sorted[i].tokens);
}

TEST_F(CoprocessTest, MakespanIsMaxOfSides)
{
    const auto part = partitionExperts(
        makeExperts({8, 8, 16, 16, 32, 32, 64, 64}), lut, xpu, low);
    EXPECT_EQ(part.makespan(),
              std::max(part.lowTime, part.xpuTime));
}

TEST_F(CoprocessTest, NeverWorseThanSingleEngine)
{
    // The paper's core claim for expert co-processing, checked on
    // many random token histograms.
    Rng rng(99);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<std::int64_t> tokens;
        const int n = static_cast<int>(rng.uniformInt(1, 8));
        for (int i = 0; i < n; ++i)
            tokens.push_back(rng.uniformInt(0, 200));
        const auto experts = makeExperts(tokens);
        const auto part = partitionExperts(experts, lut, xpu, low);
        EXPECT_LE(part.makespan(), allOn(xpu, experts));
        EXPECT_LE(part.makespan(), allOn(low, experts));
    }
}

TEST_F(CoprocessTest, DecodeStageAllGoLow)
{
    // Uniform few-token experts: Logic-PIM alone beats any split
    // that wakes the xPU for one expert.
    const auto part = partitionExperts(
        makeExperts({16, 16, 16, 16, 16, 16, 16, 16}), lut, xpu,
        low);
    const auto experts =
        makeExperts({16, 16, 16, 16, 16, 16, 16, 16});
    EXPECT_LE(part.makespan(), allOn(low, experts));
}

TEST_F(CoprocessTest, SkewedExpertsSplit)
{
    // One hot expert (mixed stage) and several cold ones: the hot
    // expert belongs on the xPU, the cold ones on Logic-PIM
    // (Section VIII-B).
    const auto part = partitionExperts(
        makeExperts({4096, 8, 8, 8, 8, 8, 8, 8}), lut, xpu, low);
    EXPECT_GT(part.numOnLow, 0);
    EXPECT_LT(part.numOnLow,
              static_cast<int>(part.sorted.size()));
    // The hot expert (sorted last) is on the xPU side.
    EXPECT_EQ(part.sorted.back().tokens, 4096);
}

TEST_F(CoprocessTest, FewestTokensAssignedToLow)
{
    const auto part = partitionExperts(
        makeExperts({100, 1, 50, 2, 75, 3}), lut, xpu, low);
    // Whatever the split, the low side holds a prefix of the
    // ascending ordering.
    for (int i = 1; i < part.numOnLow; ++i)
        EXPECT_LE(part.sorted[i - 1].tokens,
                  part.sorted[i].tokens);
}

TEST_F(CoprocessTest, AttentionCompositionIsMax)
{
    EXPECT_EQ(coProcessedAttentionTime(100, 200), 200);
    EXPECT_EQ(coProcessedAttentionTime(300, 200), 300);
    EXPECT_EQ(coProcessedAttentionTime(0, 200), 200);
}

/** Property sweep over gate skews. */
class SkewSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(SkewSweep, PartitionNeverWorse)
{
    const HbmTiming timing = hbm3Timing();
    const DramCalibration &cal = cachedCalibration();
    const EngineSpec xpu = h100Engine(timing, cal);
    const EngineSpec low = logicPimEngine(timing, cal, 5);
    LayerCosts costs{glamConfig()};
    ExpertTimeLut lut{xpu, low, costs.expertFfn(1),
                      costs.expertFfn(2), 8192};

    ExpertSelector sel(64, 2, GatePolicy::Zipf, GetParam());
    Rng rng(7);
    const auto hist = sel.sample(rng, 128);
    std::vector<ExpertWork> experts;
    for (auto h : hist)
        experts.push_back({h, costs.expertFfn(h)});

    const auto part = partitionExperts(experts, lut, xpu, low);
    PicoSec all_low = low.dispatchOverhead;
    PicoSec all_xpu = xpu.dispatchOverhead;
    for (const auto &w : experts) {
        if (w.tokens == 0)
            continue;
        all_low += operatorTimeNoOverhead(low, w.cost.flops,
                                          w.cost.bytes);
        all_xpu += operatorTimeNoOverhead(xpu, w.cost.flops,
                                          w.cost.bytes);
    }
    EXPECT_LE(part.makespan(), all_low);
    EXPECT_LE(part.makespan(), all_xpu);
}

INSTANTIATE_TEST_SUITE_P(GateSkews, SkewSweep,
                         ::testing::Values(0.0, 0.5, 1.0, 1.5,
                                           2.0));

} // namespace
} // namespace duplex
