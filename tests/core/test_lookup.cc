/**
 * @file
 * Expert-time lookup table tests (Section V-B).
 */

#include <gtest/gtest.h>

#include "core/lookup.hh"
#include "device/gpu.hh"
#include "device/pim.hh"

namespace duplex
{
namespace
{

class LutTest : public ::testing::Test
{
  protected:
    HbmTiming timing = hbm3Timing();
    const DramCalibration &cal = cachedCalibration();
    EngineSpec xpu = h100Engine(timing, cal);
    EngineSpec low = logicPimEngine(timing, cal, 5);
    LayerCosts costs{mixtralConfig()};
    ExpertTimeLut lut{xpu, low, costs.expertFfn(1),
                      costs.expertFfn(2), 512};
};

TEST_F(LutTest, ZeroTokensIsFree)
{
    EXPECT_EQ(lut.xpuTime(0), 0);
    EXPECT_EQ(lut.lowTime(0), 0);
}

TEST_F(LutTest, ReconstructsAffineCost)
{
    for (std::int64_t t : {1, 2, 5, 37, 400}) {
        const OpCost direct = costs.expertFfn(t);
        const OpCost rebuilt = lut.expertCost(t);
        EXPECT_NEAR(rebuilt.flops, direct.flops,
                    direct.flops * 1e-9);
        EXPECT_EQ(rebuilt.bytes, direct.bytes);
    }
}

TEST_F(LutTest, TableMatchesExactRoofline)
{
    for (std::int64_t t : {1, 3, 16, 100, 512}) {
        const OpCost c = costs.expertFfn(t);
        EXPECT_EQ(lut.xpuTime(t),
                  operatorTimeNoOverhead(xpu, c.flops, c.bytes));
        EXPECT_EQ(lut.lowTime(t),
                  operatorTimeNoOverhead(low, c.flops, c.bytes));
    }
}

TEST_F(LutTest, FallsBackBeyondTable)
{
    const std::int64_t big = 5000; // > 512 tabulated
    const OpCost c = costs.expertFfn(big);
    EXPECT_EQ(lut.xpuTime(big),
              operatorTimeNoOverhead(xpu, c.flops, c.bytes));
}

TEST_F(LutTest, MonotoneInTokens)
{
    PicoSec prev_x = 0;
    PicoSec prev_l = 0;
    for (std::int64_t t = 1; t <= 512; t *= 2) {
        EXPECT_GE(lut.xpuTime(t), prev_x);
        EXPECT_GE(lut.lowTime(t), prev_l);
        prev_x = lut.xpuTime(t);
        prev_l = lut.lowTime(t);
    }
}

TEST_F(LutTest, LowEngineWinsAtFewTokens)
{
    // Few tokens => Op/B ~ tokens, deep in Logic-PIM territory.
    EXPECT_LT(lut.lowTime(1), lut.xpuTime(1));
    EXPECT_LT(lut.lowTime(8), lut.xpuTime(8));
}

TEST_F(LutTest, XpuWinsAtManyTokens)
{
    // A mixed-stage expert sees thousands of tokens; the xPU's
    // compute advantage dominates (Section III-B).
    EXPECT_LT(lut.xpuTime(4096), lut.lowTime(4096));
}

TEST_F(LutTest, CrossoverExistsAndIsOrdered)
{
    // Somewhere between 1 and 4096 tokens the best engine flips
    // exactly once.
    bool low_phase = true;
    int flips = 0;
    for (std::int64_t t = 1; t <= 4096; ++t) {
        const bool low_better = lut.lowTime(t) < lut.xpuTime(t);
        if (low_better != low_phase) {
            low_phase = low_better;
            ++flips;
        }
    }
    EXPECT_EQ(flips, 1);
    EXPECT_FALSE(low_phase); // ends with the xPU winning
}

} // namespace
} // namespace duplex
