/**
 * @file
 * Expert-skew study (Section VIII-B): with hot and cold experts,
 * expert co-processing can offload the cold tail to Logic-PIM
 * while the xPU chews the hot experts; with a perfectly balanced
 * gate there is less slack to exploit.
 *
 *   ./expert_skew --model=glam --batch=64
 */

#include <cstdio>

#include "common/argparse.hh"
#include "common/table.hh"
#include "sim/presets.hh"
#include "sim/registry.hh"

using namespace duplex;

int
main(int argc, char **argv)
{
    ArgParser args;
    args.addFlag("model", "mixtral | glam | grok1", "glam");
    args.addFlag("batch", "stage-level batch size", "64");
    args.addFlag("lin", "mean prompt length", "1024");
    args.addFlag("lout", "mean generation length", "1024");
    args.parse(argc, argv);

    const ModelConfig model = modelByName(args.getString("model"));
    const int batch = static_cast<int>(args.getInt("batch"));

    std::printf("Expert skew study: %s, batch %d, %d experts "
                "(top-%d)\n\n",
                model.name.c_str(), batch, model.numExperts,
                model.topK);

    Table t({"Gate", "System", "tok/s", "vs uniform GPU",
             "experts on PIM (last MoE)"});
    double uniform_gpu = 0.0;
    for (const auto &[gate_name, policy, skew] :
         std::vector<std::tuple<std::string, GatePolicy, double>>{
             {"uniform", GatePolicy::Uniform, 0.0},
             {"zipf s=0.8", GatePolicy::Zipf, 0.8},
             {"zipf s=1.5", GatePolicy::Zipf, 1.5}}) {
        for (const std::string system :
             {"gpu", "duplex", "duplex-pe-et"}) {
            // Build the cluster directly so the gate policy can be
            // overridden.
            ClusterConfig cfg = makeClusterConfig(system, model);
            cfg.gatePolicy = policy;
            cfg.zipfS = skew;
            Cluster cluster(cfg);

            // Steady-state decode stages.
            StageShape stage;
            for (int i = 0; i < batch; ++i)
                stage.decodeContexts.push_back(
                    args.getInt("lin") + args.getInt("lout") / 2);
            PicoSec total = 0;
            const int reps = 24;
            for (int i = 0; i < reps; ++i)
                total += cluster.executeStage(stage).time;
            const double thr =
                static_cast<double>(batch) * reps /
                psToSec(total);
            if (system == "gpu" && gate_name == "uniform")
                uniform_gpu = thr;
            t.startRow();
            t.cell(gate_name);
            t.cell(SystemRegistry::instance().displayName(system));
            t.cell(thr, 0);
            t.cell(thr / uniform_gpu, 2);
            t.cell(static_cast<std::int64_t>(
                cluster.lastExpertsOnLow()));
        }
    }
    t.print();
    std::printf("\nSection VIII-B expectation: skew helps Duplex "
                "relative to a uniform gate (hot experts go to "
                "the xPU, the cold tail to Logic-PIM), while the "
                "GPU gains little from skew.\n");
    return 0;
}
