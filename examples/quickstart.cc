/**
 * @file
 * Quickstart: simulate Mixtral serving on a chosen set of systems
 * and workloads, print throughput, latency, SLO attainment and
 * energy.
 *
 *   ./quickstart --model=mixtral --batch=64 --lin=1024 --lout=1024
 *   ./quickstart --system=bank-pim        # any registered system
 *   ./quickstart --system=duplex-split --qps=6   # open-loop arrivals
 *   ./quickstart --workload=bursty        # any registered workload
 *   ./quickstart --workload=mixed --qps=8 # scenario mix, open loop
 *   ./quickstart --save-trace=run.csv     # dump the request stream
 *   ./quickstart --trace=run.csv          # ... and replay it
 *   ./quickstart --metrics=retained       # legacy metrics path
 *   ./quickstart --fleet=4 --policy=least-loaded --qps=8
 *                                         # routed multi-instance fleet
 *   ./quickstart --fleet=1 --autoscale --workload=diurnal
 *                                         # arrival-rate autoscaling
 *   ./quickstart --fleet=4 --qps=8 --faults="crash@2:0;degrade@4:1:2"
 *                                         # scripted fault injection
 *   ./quickstart --fleet=4 --qps=8 --mtbf=5 --mttr=1 \
 *                --policy=healthy-first   # seeded random faults
 *   ./quickstart --sched=priority --priority-frac=0.25 --qps=8
 *                                         # class-aware admission + preemption
 *   ./quickstart --sched=ttft-protect --prefill-chunk=256 --qps=8
 *                                         # burst-protected, chunked prefill
 *   ./quickstart --workload=session --qps=2 --prefix-cache=64
 *                                         # multi-turn chat + KV prefix cache
 *   ./quickstart --workload=session --prefix-cache=64 --evict=lfu \
 *                --fleet=2 --policy=session-affinity --qps=4
 *                                         # cache-local session routing
 *   ./quickstart --list-systems
 *   ./quickstart --list-workloads
 *   ./quickstart --list-policies
 *   ./quickstart --list-scheds
 *   ./quickstart --list-evictions
 *
 * Every run reports its peak RSS on stderr; the default
 * --metrics=streaming drains retired requests each stage so no
 * finished Request is ever retained (only the extracted latency
 * samples grow; bench_longrun's bounded mode is the truly
 * flat-memory path).
 *
 * Also demonstrates the observer API: a StageTimeHistogram and an
 * SloAttainment observer ride along with every run (stage-latency
 * tail, TTFT/TBT attainment and goodput), and a GroupUtilization
 * observer prints the per-device-group breakdown (busy/link-wait
 * time) for disaggregated systems.
 */

#include <cstdio>

#include "common/argparse.hh"
#include "common/log.hh"
#include "common/rss.hh"
#include "common/table.hh"
#include "fleet/fleet.hh"
#include "kvcache/prefix_cache.hh"
#include "sched/policy.hh"
#include "sim/engine.hh"
#include "sim/observers.hh"
#include "sim/registry.hh"
#include "workload/registry.hh"
#include "workload/trace.hh"

using namespace duplex;

int
main(int argc, char **argv)
{
    ArgParser args;
    args.addFlag("model", "mixtral | glam | grok1 | opt | llama3",
                 "mixtral");
    args.addFlag("system",
                 "registered system id to run (see "
                 "--list-systems); empty runs the GPU-vs-Duplex "
                 "comparison",
                 "");
    args.addFlag("list-systems",
                 "list every registered serving system and exit",
                 "false");
    args.addFlag("workload",
                 "registered workload id to stream (see "
                 "--list-workloads); empty runs the synthetic "
                 "default",
                 "");
    args.addFlag("list-workloads",
                 "list every registered workload and exit",
                 "false");
    args.addFlag("trace",
                 "replay a recorded arrival,in,out CSV (implies "
                 "--workload=trace)",
                 "");
    args.addFlag("save-trace",
                 "dump the configured request stream to a CSV "
                 "before running",
                 "");
    args.addFlag("batch", "stage-level batch size", "64");
    args.addFlag("lin", "mean prompt length", "1024");
    args.addFlag("lout", "mean generation length", "256");
    args.addFlag("stages", "stages to simulate", "1500");
    args.addFlag("qps",
                 "Poisson arrival rate; 0 runs the closed loop",
                 "0");
    args.addFlag("tbt-slo", "TBT SLO in ms (attainment column)",
                 "40");
    args.addFlag("ttft-slo", "TTFT SLO in ms (attainment column)",
                 "1500");
    args.addFlag("metrics",
                 "streaming (default: retired requests are drained "
                 "and dropped each stage; only latency samples are "
                 "kept) | retained (legacy keep-every-request "
                 "reference path); both produce bit-identical "
                 "tables",
                 "streaming");
    args.addFlag("fleet",
                 "run N serving instances behind a router instead "
                 "of the single-instance comparison (0 = off)",
                 "0");
    args.addFlag("policy",
                 "fleet routing policy (see --list-policies)",
                 "round-robin");
    args.addFlag("list-policies",
                 "list every registered routing policy and exit",
                 "false");
    args.addFlag("sessions",
                 "distinct sessions stamped onto the stream "
                 "(session-affinity routing; 0 = session-less)",
                 "0");
    args.addFlag("autoscale",
                 "scale the fleet on observed arrival rate "
                 "(open-loop workloads only)",
                 "false");
    args.addFlag("scale-min", "autoscale floor (instances)", "1");
    args.addFlag("scale-max", "autoscale ceiling (instances)", "8");
    args.addFlag("scale-up-qps",
                 "spin up above this observed QPS per instance",
                 "4");
    args.addFlag("scale-down-qps",
                 "drain an instance below this QPS per instance",
                 "1");
    args.addFlag("faults",
                 "scripted fleet faults: crash@sec:inst[:down-sec] "
                 "| degrade@sec:inst:window-sec[:factor] | "
                 "crash@sec:domain=D[:down-sec], separated by ';' "
                 "or ','",
                 "");
    args.addFlag("mtbf",
                 "mean time between random instance faults in "
                 "simulated seconds (0 = off; dedicated fault RNG "
                 "stream)",
                 "0");
    args.addFlag("mttr",
                 "mean repair time for random crashes (seconds)",
                 "2");
    args.addFlag("straggler-frac",
                 "fraction of random faults that degrade (straggle) "
                 "instead of crash",
                 "0");
    args.addFlag("straggler-factor",
                 "stage-time multiplier inside straggler windows",
                 "3");
    args.addFlag("retry-max",
                 "re-routes a crashed-out request may consume "
                 "before it is dropped",
                 "3");
    args.addFlag("retry-backoff",
                 "backoff before the first retry in simulated "
                 "seconds (doubles per attempt)",
                 "0.05");
    args.addFlag("domains",
                 "stripe the fleet across N failure domains "
                 "(racks); instance i lands in domain i%N (0 = no "
                 "domain topology)",
                 "0");
    args.addFlag("domain-mtbf",
                 "mean time between correlated whole-domain crashes "
                 "in simulated seconds (0 = off; dedicated "
                 "per-domain fault RNG stream)",
                 "0");
    args.addFlag("domain-mttr",
                 "mean repair time for correlated domain crashes in "
                 "seconds (0 = fall back to --mttr)",
                 "0");
    args.addFlag("drain-threshold",
                 "proactively drain an instance whose degrade "
                 "factor reaches this value: it stops admitting and "
                 "its queued requests migrate back through the "
                 "router (0 = never drain)",
                 "0");
    args.addFlag("scale-avail",
                 "availability-aware autoscaling: QPS thresholds "
                 "act on accepting capacity discounted by observed "
                 "unavailability (needs --autoscale; inert without "
                 "faults)",
                 "false");
    args.addFlag("sched",
                 "batcher scheduling policy (see --list-scheds)",
                 "fcfs");
    args.addFlag("list-scheds",
                 "list every registered scheduling policy and exit",
                 "false");
    args.addFlag("prefill-chunk",
                 "split prompts into chunks of at most N tokens "
                 "across stages (0 = whole prompt in one stage)",
                 "0");
    args.addFlag("priority-frac",
                 "fraction of requests stamped priority class 1 "
                 "(for --sched=priority; 0 = classless)",
                 "0");
    args.addFlag("prefix-cache",
                 "KV prefix-cache budget in MiB per instance (0 = "
                 "off; pays off with --workload=session)",
                 "0");
    args.addFlag("evict",
                 "prefix-cache eviction policy (see "
                 "--list-evictions)",
                 "lru");
    args.addFlag("list-evictions",
                 "list every registered eviction policy and exit",
                 "false");
    args.addFlag("turns",
                 "turns per session for --workload=session",
                 "4");
    args.addFlag("think",
                 "mean think time between session turns in "
                 "simulated seconds (--workload=session)",
                 "2");
    args.addFlag("shared-prefix",
                 "shared system-prompt tokens prepended to every "
                 "session's first turn (--workload=session)",
                 "256");
    args.parse(argc, argv);

    // Misconfiguration dies with one readable line instead of a
    // confusing run (or a panic deep inside the driver).
    const int fleet_size = static_cast<int>(args.getInt("fleet"));
    fatalIf(fleet_size < 0,
            "--fleet must be >= 0 (0 = single-instance mode)");
    fatalIf(args.getDouble("qps") < 0.0, "--qps must be >= 0");
    fatalIf(args.getInt("scale-min") < 1, "--scale-min must be >= 1");
    fatalIf(args.getInt("scale-max") < args.getInt("scale-min"),
            "--scale-max must be >= --scale-min");
    fatalIf(args.getDouble("scale-up-qps") <= 0.0,
            "--scale-up-qps must be > 0");
    fatalIf(args.getDouble("scale-down-qps") < 0.0,
            "--scale-down-qps must be >= 0");
    fatalIf(args.getInt("retry-max") < 0,
            "--retry-max must be >= 0 (0 = never retry)");
    fatalIf(args.getDouble("retry-backoff") < 0.0,
            "--retry-backoff must be >= 0");
    fatalIf(args.getDouble("mtbf") < 0.0, "--mtbf must be >= 0");
    fatalIf(args.getDouble("mtbf") > 0.0 &&
                args.getDouble("mttr") <= 0.0,
            "--mttr must be > 0 when --mtbf is set");
    fatalIf(args.getInt("domains") < 0,
            "--domains must be >= 0 (0 = no domain topology)");
    fatalIf(args.getDouble("domain-mtbf") < 0.0,
            "--domain-mtbf must be >= 0");
    fatalIf(args.getDouble("domain-mttr") < 0.0,
            "--domain-mttr must be >= 0");
    fatalIf(args.getDouble("domain-mtbf") > 0.0 &&
                args.getInt("domains") == 0,
            "--domain-mtbf needs a domain topology (--domains=N)");
    fatalIf(args.getDouble("domain-mtbf") > 0.0 &&
                args.getDouble("domain-mttr") <= 0.0 &&
                args.getDouble("mttr") <= 0.0,
            "--domain-mtbf needs a repair time (--domain-mttr or "
            "--mttr)");
    fatalIf(args.getDouble("drain-threshold") < 0.0,
            "--drain-threshold must be >= 0 (0 = never drain)");
    const bool wants_faults =
        !args.getString("faults").empty() ||
        args.getDouble("mtbf") > 0.0 ||
        args.getDouble("domain-mtbf") > 0.0;
    fatalIf(wants_faults && fleet_size == 0,
            "--faults/--mtbf/--domain-mtbf need a fleet "
            "(--fleet=N)");
    fatalIf(args.getInt("domains") > 0 && fleet_size == 0,
            "--domains needs a fleet (--fleet=N)");
    fatalIf(args.getDouble("drain-threshold") > 0.0 &&
                fleet_size == 0,
            "--drain-threshold needs a fleet (--fleet=N)");
    const std::string sched = args.getString("sched");
    fatalIf(!SchedulingPolicyRegistry::instance().contains(sched),
            "--sched=" + sched +
                " is not a registered scheduling policy (see "
                "--list-scheds)");
    const std::int64_t prefill_chunk = args.getInt("prefill-chunk");
    fatalIf(prefill_chunk < 0,
            "--prefill-chunk must be >= 0 (0 = whole-prompt "
            "prefill)");
    const double priority_frac = args.getDouble("priority-frac");
    fatalIf(priority_frac < 0.0 || priority_frac > 1.0,
            "--priority-frac must be in [0, 1]");
    const double cache_mb = args.getDouble("prefix-cache");
    fatalIf(cache_mb < 0.0,
            "--prefix-cache must be >= 0 (MiB; 0 = off)");
    const std::string evict = args.getString("evict");
    fatalIf(!EvictionPolicyRegistry::instance().contains(evict),
            "--evict=" + evict +
                " is not a registered eviction policy (see "
                "--list-evictions)");
    fatalIf(args.getInt("turns") < 1, "--turns must be >= 1");
    fatalIf(args.getDouble("think") < 0.0,
            "--think must be >= 0");
    fatalIf(args.getInt("shared-prefix") < 0,
            "--shared-prefix must be >= 0");

    const std::string metrics_mode = args.getString("metrics");
    MetricsMode mode = MetricsMode::Streaming;
    if (metrics_mode == "retained") {
        mode = MetricsMode::Retained;
    } else if (metrics_mode != "streaming") {
        std::fprintf(stderr, "unknown --metrics=%s\n",
                     metrics_mode.c_str());
        return 1;
    }

    if (args.getBool("list-systems")) {
        const SystemRegistry &registry = SystemRegistry::instance();
        Table t({"id", "name", "summary"});
        for (const std::string &id : registry.ids()) {
            t.startRow();
            t.cell(id);
            t.cell(registry.displayName(id));
            t.cell(registry.summary(id));
        }
        t.print();
        return 0;
    }
    if (args.getBool("list-workloads")) {
        const WorkloadRegistry &registry =
            WorkloadRegistry::instance();
        Table t({"id", "name", "summary"});
        for (const std::string &id : registry.ids()) {
            t.startRow();
            t.cell(id);
            t.cell(registry.displayName(id));
            t.cell(registry.summary(id));
        }
        t.print();
        return 0;
    }
    if (args.getBool("list-policies")) {
        const RoutingPolicyRegistry &registry =
            RoutingPolicyRegistry::instance();
        Table t({"id", "summary"});
        for (const std::string &id : registry.ids()) {
            t.startRow();
            t.cell(id);
            t.cell(registry.summary(id));
        }
        t.print();
        return 0;
    }
    if (args.getBool("list-scheds")) {
        const SchedulingPolicyRegistry &registry =
            SchedulingPolicyRegistry::instance();
        Table t({"id", "summary"});
        for (const std::string &id : registry.ids()) {
            t.startRow();
            t.cell(id);
            t.cell(registry.summary(id));
        }
        t.print();
        return 0;
    }
    if (args.getBool("list-evictions")) {
        const EvictionPolicyRegistry &registry =
            EvictionPolicyRegistry::instance();
        Table t({"id", "summary"});
        for (const std::string &id : registry.ids()) {
            t.startRow();
            t.cell(id);
            t.cell(registry.summary(id));
        }
        t.print();
        return 0;
    }

    const ModelConfig model = modelByName(args.getString("model"));
    std::printf("Model %s: %.1fB parameters, %d layers, "
                "%d experts, KV %0.f KiB/token\n",
                model.name.c_str(), model.totalParams() / 1e9,
                model.numLayers, model.numExperts,
                static_cast<double>(model.kvBytesPerToken()) /
                    1024.0);
    const SystemTopology topo = defaultTopology(model);
    std::printf("System: %d node(s) x %d devices\n",
                topo.numNodes, topo.devicesPerNode);

    // The workload every run streams; --trace wins over --workload.
    std::string workload = args.getString("workload");
    WorkloadSpec spec;
    spec.meanInputLen = args.getInt("lin");
    spec.meanOutputLen = args.getInt("lout");
    spec.qps = args.getDouble("qps");
    spec.numSessions = static_cast<int>(args.getInt("sessions"));
    spec.priorityFrac = priority_frac;
    spec.sessionTurns = static_cast<int>(args.getInt("turns"));
    spec.sharedPrefixTokens = args.getInt("shared-prefix");
    spec.meanThinkSec = args.getDouble("think");
    spec.tracePath = args.getString("trace");
    if (!spec.tracePath.empty())
        workload = "trace";
    const std::string workload_id =
        workload.empty() ? "synthetic" : workload;

    // The KV prefix cache every run below installs (disabled at
    // the default --prefix-cache=0 — every cache branch in the
    // simulator is then byte-identical to a cache-less build). The
    // shared-prefix seed entry only makes sense when the workload
    // actually shares a prefix across sessions.
    PrefixCacheSpec cache;
    cache.budgetBytes =
        static_cast<std::int64_t>(cache_mb * 1024.0 * 1024.0);
    cache.evictPolicy = evict;
    if (workload_id == "session")
        cache.sharedPrefixTokens = spec.sharedPrefixTokens;
    // One throwaway source serves both the banner and --save-trace;
    // each run below builds its own fresh source through the
    // registry, so their RNG streams stay untouched.
    const std::unique_ptr<WorkloadSource> source =
        makeWorkload(workload_id, spec);
    std::printf("Workload: %s\n", source->describe().c_str());
    // Non-default scheduling only: the default fcfs/no-chunk banner
    // stays byte-identical to pre-policy builds (golden contract).
    if (sched != "fcfs" || prefill_chunk > 0) {
        std::printf("Scheduler: %s", sched.c_str());
        if (prefill_chunk > 0)
            std::printf(", prefill chunk %lld token(s)",
                        static_cast<long long>(prefill_chunk));
        if (priority_frac > 0.0)
            std::printf(", priority frac %.2f", priority_frac);
        std::printf("\n");
    }
    // Gated on the spec so cache-less runs print byte-identically
    // to builds that predate the kvcache subsystem.
    if (cache.enabled())
        std::printf("Prefix cache: %.1f MiB per instance, evict "
                    "%s\n",
                    cache_mb, evict.c_str());
    std::printf("\n");

    const int batch = static_cast<int>(args.getInt("batch"));
    const int num_requests = 4 * batch;

    // --save-trace materializes the stream a run would consume and
    // dumps it in the workload/trace.hh CSV format.
    const std::string save_path = args.getString("save-trace");
    if (!save_path.empty()) {
        std::vector<Request> requests;
        for (std::int64_t i = 0;
             i < num_requests && source->remaining() > 0; ++i)
            requests.push_back(source->next());
        saveTrace(save_path, requests);
        std::printf("Saved %zu request(s) to %s\n\n",
                    requests.size(), save_path.c_str());
    }

    std::vector<std::string> systems = {"gpu", "duplex",
                                        "duplex-pe",
                                        "duplex-pe-et"};
    const std::string requested = args.getString("system");
    if (!requested.empty()) {
        // The GPU baseline stays in front for the "vs GPU" column.
        systems = {"gpu"};
        if (requested != "gpu")
            systems.push_back(requested);
    }

    const SloSpec slo{args.getDouble("ttft-slo"),
                      args.getDouble("tbt-slo")};

    // --fleet=N runs a routed multi-instance fleet of ONE system
    // (default gpu) instead of the GPU-vs-Duplex comparison. All
    // fleet output below is simulated-time-deterministic; the CI
    // determinism job runs this path twice and diffs stdout.
    if (fleet_size > 0) {
        FleetConfig fc;
        fc.sim.systemName = requested.empty() ? "gpu" : requested;
        fc.sim.model = model;
        fc.sim.workloadName = workload;
        fc.sim.maxBatch = batch;
        fc.sim.workload = spec;
        // The shared stream scales with the fleet, and the warm-up
        // budget — a property of that stream — splits across it, so
        // every instance keeps post-warm-up samples even when the
        // per-instance stage cap bounds the simulated span.
        fc.sim.numRequests = num_requests * fleet_size;
        fc.sim.warmupRequests =
            defaultWarmupRequests(batch) / fleet_size;
        fc.sim.maxStages = args.getInt("stages");
        fc.sim.metricsMode = mode;
        fc.sim.schedPolicy = sched;
        fc.sim.prefillChunkTokens = prefill_chunk;
        fc.sim.prefixCache = cache;
        fc.instances = fleet_size;
        fc.policy = args.getString("policy");
        fc.scaling.enabled = args.getBool("autoscale");
        fc.scaling.minInstances =
            static_cast<int>(args.getInt("scale-min"));
        fc.scaling.maxInstances =
            static_cast<int>(args.getInt("scale-max"));
        fc.scaling.upQpsPerInstance =
            args.getDouble("scale-up-qps");
        fc.scaling.downQpsPerInstance =
            args.getDouble("scale-down-qps");
        if (!args.getString("faults").empty())
            fc.faults.events =
                parseFaultList(args.getString("faults"));
        fc.faults.mtbfSec = args.getDouble("mtbf");
        fc.faults.mttrSec = args.getDouble("mttr");
        fc.faults.stragglerFraction =
            args.getDouble("straggler-frac");
        fc.faults.stragglerFactor =
            args.getDouble("straggler-factor");
        fc.faults.numDomains =
            static_cast<int>(args.getInt("domains"));
        fc.faults.domainMtbfSec = args.getDouble("domain-mtbf");
        fc.faults.domainMttrSec = args.getDouble("domain-mttr");
        fc.faults.drainFactorThreshold =
            args.getDouble("drain-threshold");
        fc.scaling.availabilityAware = args.getBool("scale-avail");
        fc.retry.maxAttempts =
            static_cast<int>(args.getInt("retry-max"));
        fc.retry.backoffSec = args.getDouble("retry-backoff");

        std::printf("Fleet: %d x %s, policy %s%s\n", fc.instances,
                    SystemRegistry::instance()
                        .displayName(fc.sim.systemName)
                        .c_str(),
                    fc.policy.c_str(),
                    fc.scaling.enabled ? ", autoscaling" : "");

        FleetDriver driver(fc);
        FleetSloAttainment fleet_slo(slo);
        FleetUtilization util;
        FleetPrefixCacheStats fleet_cache;
        driver.addObserver(&fleet_slo);
        driver.addObserver(&util);
        driver.addObserver(&fleet_cache);
        const FleetResult r = driver.run();

        const SloAttainment &att = fleet_slo.attainment();
        Table ft({"Fleet", "tokens/s", "TBT p50 ms", "SLO att",
                  "goodput/s", "J/token"});
        ft.startRow();
        ft.cell(fc.policy);
        ft.cell(r.metrics.throughputTokensPerSec(), 0);
        ft.cell(r.metrics.tbtMs.percentile(50), 2);
        ft.cell(att.attainment(), 2);
        ft.cell(att.goodputTokensPerSec(), 0);
        ft.cell(r.generatedTokens > 0
                    ? r.totals.totalEnergyJ() /
                          static_cast<double>(r.generatedTokens)
                    : 0.0,
                3);
        ft.print();
        std::printf("Routed %lld request(s), retired %lld; peak %d "
                    "instance(s), makespan %.1f ms\n",
                    static_cast<long long>(r.requestsRouted),
                    static_cast<long long>(r.requestsRetired),
                    r.peakInstances, psToMs(r.metrics.elapsed));

        std::printf("\nInstance breakdown:\n");
        // The downtime/availability columns are gated on the fault
        // SPEC (not the outcome) so a fault-free fleet prints
        // byte-identically to a build without fault injection.
        std::vector<std::string> bt_cols = {
            "instance", "routed", "retired", "stages", "busy ms"};
        if (fc.faults.enabled()) {
            bt_cols.push_back("down ms");
            bt_cols.push_back("avail");
        }
        Table bt(bt_cols);
        for (const FleetUtilization::InstanceStats &s :
             util.instances()) {
            bt.startRow();
            bt.cell("#" + std::to_string(s.id));
            bt.cell(static_cast<double>(s.routed), 0);
            bt.cell(static_cast<double>(s.retired), 0);
            bt.cell(static_cast<double>(s.stages), 0);
            bt.cell(psToMs(s.busyTime), 1);
            if (fc.faults.enabled()) {
                const std::size_t idx =
                    static_cast<std::size_t>(s.id);
                const PicoSec down =
                    idx < r.perInstanceDowntime.size()
                        ? r.perInstanceDowntime[idx]
                        : 0;
                bt.cell(psToMs(down), 1);
                bt.cell(r.metrics.elapsed > 0
                            ? 1.0 - static_cast<double>(down) /
                                        static_cast<double>(
                                            r.metrics.elapsed)
                            : 1.0,
                        4);
            }
        }
        bt.print();

        // Gated on the spec, like the faults block below: a
        // cache-less fleet prints byte-identically to a build
        // without the kvcache subsystem.
        if (cache.enabled()) {
            const SloAttainment &a = fleet_slo.attainment();
            const PrefixCacheStats &cs = fleet_cache.stats();
            std::printf(
                "\nPrefix cache: hit rate %.2f (%lld/%lld "
                "lookups), %lld token(s) served warm, %lld "
                "install(s), %lld eviction(s)\n",
                r.prefixCache.hitRate(),
                static_cast<long long>(r.prefixCache.hits),
                static_cast<long long>(r.prefixCache.lookups),
                static_cast<long long>(r.prefixCache.hitTokens),
                static_cast<long long>(r.prefixCache.installs),
                static_cast<long long>(r.prefixCache.evictions));
            std::printf(
                "Warm TTFT %.1f ms over %lld request(s) vs cold "
                "%.1f ms over %lld; TTFT attainment %.2f warm / "
                "%.2f cold\n",
                cs.warmT2ftMs(),
                static_cast<long long>(cs.warmRequests()),
                cs.coldT2ftMs(),
                static_cast<long long>(cs.coldRequests()),
                a.warmT2ftAttainment(), a.coldT2ftAttainment());
        }

        if (!r.scaleEvents.empty()) {
            std::printf("\nScale events:\n");
            for (const ScaleEvent &e : r.scaleEvents) {
                const char *kind =
                    e.kind == ScaleEvent::Kind::Up ? "up"
                    : e.kind == ScaleEvent::Kind::Drain
                        ? "drain"
                        : "retire";
                std::printf("  t=%8.1f ms %-6s instance %d "
                            "(observed %.1f qps, %d accepting)\n",
                            psToMs(e.time), kind, e.instance,
                            e.observedQps, e.acceptingAfter);
            }
        }

        // Gated on the spec, not on the outcome, so a faulted
        // config that happened to fire nothing still reports — and
        // a fault-free run prints byte-identically to a build that
        // predates fault injection (the golden contract).
        if (fc.faults.enabled()) {
            std::printf("\nAvailability: %.4f (downtime %.1f ms "
                        "across %d instance(s))\n",
                        r.availability(),
                        psToMs(r.totalDowntime),
                        static_cast<int>(r.perInstance.size()));
            std::printf("Faults: %d crash(es), %d straggler "
                        "window(s); lost %lld request-attempt(s) "
                        "and %lld generated token(s), %lld "
                        "retry(ies), %lld dropped\n",
                        r.crashes, r.degradeWindows,
                        static_cast<long long>(r.requestsLost),
                        static_cast<long long>(r.lostWorkTokens),
                        static_cast<long long>(r.retriesScheduled),
                        static_cast<long long>(r.requestsDropped));
            // Each block below is gated on its own spec knob so
            // every pre-existing faulted configuration keeps
            // byte-identical stdout.
            if (fc.faults.drainFactorThreshold > 0.0)
                std::printf("Drains: %d proactive drain(s), %lld "
                            "queued request(s) migrated\n",
                            r.drains,
                            static_cast<long long>(
                                r.requestsMigrated));
            if (!r.perDomain.empty()) {
                std::printf("Per-domain availability "
                            "(worst-domain served %.4f):\n",
                            r.worstDomainAvailability());
                for (const DomainAvailability &d : r.perDomain)
                    std::printf(
                        "  domain %d: %d instance(s), %d "
                        "crash(es), %lld routed, %lld lost, down "
                        "%.1f ms, avail %.4f, served %.4f\n",
                        d.domain, d.instances, d.crashes,
                        static_cast<long long>(d.routed),
                        static_cast<long long>(d.lost),
                        psToMs(d.downtime), d.availability,
                        d.served());
            }
            if (!r.faultEvents.empty()) {
                std::printf("Fault timeline:\n");
                for (const FaultEvent &e : r.faultEvents) {
                    std::printf("  t=%8.1f ms %-7s instance %d",
                                psToMs(e.at),
                                faultKindName(e.kind), e.instance);
                    if (e.kind == FaultKind::Crash) {
                        if (e.domain >= 0)
                            std::printf(" [domain %d]", e.domain);
                        std::printf(e.duration < 0
                                        ? " (never rejoins)\n"
                                        : " (down %.1f ms)\n",
                                    psToMs(e.duration));
                    }
                    else if (e.kind == FaultKind::Degrade)
                        std::printf(" (x%.1f for %.1f ms)\n",
                                    e.factor, psToMs(e.duration));
                    else
                        std::printf("\n");
                }
            }
        }

        std::fprintf(stderr, "peak RSS %.1f MB (--metrics=%s)\n",
                     peakRssMb(), metrics_mode.c_str());
        return 0;
    }

    Table t({"System", "tokens/s", "vs GPU", "TBT p50 ms",
             "stage p99 ms", "SLO att", "goodput/s", "J/token"});
    double gpu_thr = 0.0;
    std::vector<GroupUtilization> utilizations(systems.size());
    std::vector<PrefixCacheStats> cache_stats(systems.size());
    std::vector<PrefixCacheMetrics> cache_metrics(systems.size());
    std::vector<SloAttainment> attainments;
    for (std::size_t i = 0; i < systems.size(); ++i) {
        const std::string &system = systems[i];
        SimConfig c;
        c.systemName = system;
        c.model = model;
        c.workloadName = workload;
        c.maxBatch = batch;
        c.workload = spec;
        c.numRequests = num_requests;
        c.warmupRequests = defaultWarmupRequests(c.maxBatch);
        c.maxStages = args.getInt("stages");
        c.metricsMode = mode;
        c.schedPolicy = sched;
        c.prefillChunkTokens = prefill_chunk;
        c.prefixCache = cache;
        SimulationEngine engine(c);
        StageTimeHistogram stage_times;
        SloAttainment attainment(slo);
        engine.addObserver(&stage_times);
        engine.addObserver(&attainment);
        engine.addObserver(&cache_stats[i]);
        engine.addObserver(&utilizations[i]);
        const SimResult r = engine.run();
        cache_metrics[i] = r.prefixCache;
        attainments.push_back(attainment);
        const double thr = r.metrics.throughputTokensPerSec();
        if (system == "gpu")
            gpu_thr = thr;
        t.startRow();
        t.cell(SystemRegistry::instance().displayName(system));
        t.cell(thr, 0);
        t.cell(thr / gpu_thr, 2);
        t.cell(r.metrics.tbtMs.percentile(50), 2);
        t.cell(stage_times.stageMs().percentile(99), 2);
        t.cell(attainment.attainment(), 2);
        t.cell(attainment.goodputTokensPerSec(), 0);
        t.cell(r.energyPerTokenJ(), 3);
    }
    t.print();
    std::printf("SLO: TTFT < %.0f ms and every TBT < %.0f ms; "
                "goodput counts only attaining requests. "
                "Attainment covers every retired request (incl. "
                "warm-up); tokens/s and TBT p50 are post-warm-up.\n",
                slo.t2ftMs, slo.tbtMs);

    // Gated on the spec: cache-less runs print byte-identically to
    // builds without the kvcache subsystem. The split system's
    // custom loop ignores the cache, so its row reports all-cold.
    if (cache.enabled()) {
        std::printf("\nPrefix cache (%.1f MiB, evict %s):\n",
                    cache_mb, evict.c_str());
        for (std::size_t i = 0; i < systems.size(); ++i) {
            const PrefixCacheMetrics &m = cache_metrics[i];
            const PrefixCacheStats &cs = cache_stats[i];
            std::printf(
                "  %-12s hit rate %.2f (%lld/%lld), %lld warm "
                "token(s), %lld eviction(s); warm TTFT %.1f ms "
                "x%lld vs cold %.1f ms x%lld (attain %.2f/%.2f)\n",
                SystemRegistry::instance()
                    .displayName(systems[i])
                    .c_str(),
                m.hitRate(), static_cast<long long>(m.hits),
                static_cast<long long>(m.lookups),
                static_cast<long long>(m.hitTokens),
                static_cast<long long>(m.evictions),
                cs.warmT2ftMs(),
                static_cast<long long>(cs.warmRequests()),
                cs.coldT2ftMs(),
                static_cast<long long>(cs.coldRequests()),
                attainments[i].warmT2ftAttainment(),
                attainments[i].coldT2ftAttainment());
        }
    }

    // Disaggregated systems report a per-device-group breakdown.
    for (std::size_t i = 0; i < systems.size(); ++i) {
        const GroupUtilization &util = utilizations[i];
        if (util.groups().empty())
            continue;
        std::printf("\n%s device groups:\n",
                    SystemRegistry::instance()
                        .displayName(systems[i])
                        .c_str());
        for (const GroupUtilization::Group &g : util.groups()) {
            std::printf("  %-8s %d device(s): busy %8.1f ms "
                        "(%.0f%% of run), KV-link wait %6.1f ms, "
                        "%lld stages\n",
                        g.name.c_str(), g.devices,
                        psToMs(g.busyTime),
                        100.0 * util.busyFraction(g.name),
                        psToMs(g.linkWaitTime),
                        static_cast<long long>(g.stages));
        }
    }

    // Memory-win visibility: peak RSS goes to stderr so the CI
    // determinism job's stdout diffs never see a non-deterministic
    // byte. Compare --metrics=streaming vs --metrics=retained on a
    // large --stages run to watch the retained vector's cost.
    std::fprintf(stderr, "peak RSS %.1f MB (--metrics=%s)\n",
                 peakRssMb(), metrics_mode.c_str());
    return 0;
}
