/**
 * @file
 * Quickstart: simulate Mixtral serving on a GPU system and on
 * Duplex, print throughput, latency and energy.
 *
 *   ./quickstart --model=mixtral --batch=64 --lin=1024 --lout=1024
 */

#include <cstdio>

#include "common/argparse.hh"
#include "common/table.hh"
#include "sim/simulator.hh"

using namespace duplex;

int
main(int argc, char **argv)
{
    ArgParser args;
    args.addFlag("model", "mixtral | glam | grok1 | opt | llama3",
                 "mixtral");
    args.addFlag("batch", "stage-level batch size", "64");
    args.addFlag("lin", "mean prompt length", "1024");
    args.addFlag("lout", "mean generation length", "256");
    args.addFlag("stages", "stages to simulate", "1500");
    args.parse(argc, argv);

    const ModelConfig model = modelByName(args.getString("model"));
    std::printf("Model %s: %.1fB parameters, %d layers, "
                "%d experts, KV %0.f KiB/token\n",
                model.name.c_str(), model.totalParams() / 1e9,
                model.numLayers, model.numExperts,
                static_cast<double>(model.kvBytesPerToken()) /
                    1024.0);
    const SystemTopology topo = defaultTopology(model);
    std::printf("System: %d node(s) x %d devices\n\n",
                topo.numNodes, topo.devicesPerNode);

    Table t({"System", "tokens/s", "vs GPU", "TBT p50 ms",
             "J/token"});
    double gpu_thr = 0.0;
    for (SystemKind kind :
         {SystemKind::Gpu, SystemKind::Duplex, SystemKind::DuplexPE,
          SystemKind::DuplexPEET}) {
        SimConfig c;
        c.system = kind;
        c.model = model;
        c.maxBatch = static_cast<int>(args.getInt("batch"));
        c.workload.meanInputLen = args.getInt("lin");
        c.workload.meanOutputLen = args.getInt("lout");
        c.numRequests = 4 * c.maxBatch;
        c.warmupRequests = c.maxBatch / 2;
        c.maxStages = args.getInt("stages");
        const SimResult r = runSimulation(c);
        const double thr = r.metrics.throughputTokensPerSec();
        if (kind == SystemKind::Gpu)
            gpu_thr = thr;
        t.startRow();
        t.cell(systemName(kind));
        t.cell(thr, 0);
        t.cell(thr / gpu_thr, 2);
        t.cell(r.metrics.tbtMs.percentile(50), 2);
        t.cell(r.energyPerTokenJ(), 3);
    }
    t.print();
    return 0;
}
