/**
 * @file
 * Quickstart: simulate Mixtral serving on a chosen set of systems,
 * print throughput, latency and energy.
 *
 *   ./quickstart --model=mixtral --batch=64 --lin=1024 --lout=1024
 *   ./quickstart --system=bank-pim        # any registered system
 *   ./quickstart --system=duplex-split --qps=6   # open-loop arrivals
 *   ./quickstart --list-systems
 *
 * Also demonstrates the observer API: a StageTimeHistogram rides
 * along with every run and reports the stage-latency tail, and a
 * GroupUtilization observer prints the per-device-group breakdown
 * (busy/link-wait time) for disaggregated systems.
 */

#include <cstdio>

#include "common/argparse.hh"
#include "common/table.hh"
#include "sim/engine.hh"
#include "sim/observers.hh"
#include "sim/registry.hh"

using namespace duplex;

int
main(int argc, char **argv)
{
    ArgParser args;
    args.addFlag("model", "mixtral | glam | grok1 | opt | llama3",
                 "mixtral");
    args.addFlag("system",
                 "registered system id to run (see "
                 "--list-systems); empty runs the GPU-vs-Duplex "
                 "comparison",
                 "");
    args.addFlag("list-systems",
                 "list every registered serving system and exit",
                 "false");
    args.addFlag("batch", "stage-level batch size", "64");
    args.addFlag("lin", "mean prompt length", "1024");
    args.addFlag("lout", "mean generation length", "256");
    args.addFlag("stages", "stages to simulate", "1500");
    args.addFlag("qps",
                 "Poisson arrival rate; 0 runs the closed loop",
                 "0");
    args.parse(argc, argv);

    if (args.getBool("list-systems")) {
        const SystemRegistry &registry = SystemRegistry::instance();
        Table t({"id", "name", "summary"});
        for (const std::string &id : registry.ids()) {
            t.startRow();
            t.cell(id);
            t.cell(registry.displayName(id));
            t.cell(registry.summary(id));
        }
        t.print();
        return 0;
    }

    const ModelConfig model = modelByName(args.getString("model"));
    std::printf("Model %s: %.1fB parameters, %d layers, "
                "%d experts, KV %0.f KiB/token\n",
                model.name.c_str(), model.totalParams() / 1e9,
                model.numLayers, model.numExperts,
                static_cast<double>(model.kvBytesPerToken()) /
                    1024.0);
    const SystemTopology topo = defaultTopology(model);
    std::printf("System: %d node(s) x %d devices\n\n",
                topo.numNodes, topo.devicesPerNode);

    std::vector<std::string> systems = {"gpu", "duplex",
                                        "duplex-pe",
                                        "duplex-pe-et"};
    const std::string requested = args.getString("system");
    if (!requested.empty()) {
        // The GPU baseline stays in front for the "vs GPU" column.
        systems = {"gpu"};
        if (requested != "gpu")
            systems.push_back(requested);
    }

    Table t({"System", "tokens/s", "vs GPU", "TBT p50 ms",
             "stage p99 ms", "J/token"});
    double gpu_thr = 0.0;
    std::vector<GroupUtilization> utilizations(systems.size());
    for (std::size_t i = 0; i < systems.size(); ++i) {
        const std::string &system = systems[i];
        SimConfig c;
        c.systemName = system;
        c.model = model;
        c.maxBatch = static_cast<int>(args.getInt("batch"));
        c.workload.meanInputLen = args.getInt("lin");
        c.workload.meanOutputLen = args.getInt("lout");
        c.workload.qps = args.getDouble("qps");
        c.numRequests = 4 * c.maxBatch;
        c.warmupRequests = defaultWarmupRequests(c.maxBatch);
        c.maxStages = args.getInt("stages");
        SimulationEngine engine(c);
        StageTimeHistogram stage_times;
        engine.addObserver(&stage_times);
        engine.addObserver(&utilizations[i]);
        const SimResult r = engine.run();
        const double thr = r.metrics.throughputTokensPerSec();
        if (system == "gpu")
            gpu_thr = thr;
        t.startRow();
        t.cell(SystemRegistry::instance().displayName(system));
        t.cell(thr, 0);
        t.cell(thr / gpu_thr, 2);
        t.cell(r.metrics.tbtMs.percentile(50), 2);
        t.cell(stage_times.stageMs().percentile(99), 2);
        t.cell(r.energyPerTokenJ(), 3);
    }
    t.print();

    // Disaggregated systems report a per-device-group breakdown.
    for (std::size_t i = 0; i < systems.size(); ++i) {
        const GroupUtilization &util = utilizations[i];
        if (util.groups().empty())
            continue;
        std::printf("\n%s device groups:\n",
                    SystemRegistry::instance()
                        .displayName(systems[i])
                        .c_str());
        for (const GroupUtilization::Group &g : util.groups()) {
            std::printf("  %-8s %d device(s): busy %8.1f ms "
                        "(%.0f%% of run), KV-link wait %6.1f ms, "
                        "%lld stages\n",
                        g.name.c_str(), g.devices,
                        psToMs(g.busyTime),
                        100.0 * util.busyFraction(g.name),
                        psToMs(g.linkWaitTime),
                        static_cast<long long>(g.stages));
        }
    }
    return 0;
}
