/**
 * @file
 * Capacity planner: given a model, a target arrival rate and a TBT
 * SLO, sweep the candidate systems and report the cheapest one (by
 * device count) that meets the objective. A KvOccupancyTrace
 * observer rides along to report how much KV head-room each
 * candidate had.
 *
 *   ./capacity_planner --model=glam --qps=8 --tbt-slo=30
 */

#include <cstdio>

#include "common/argparse.hh"
#include "common/table.hh"
#include "sim/engine.hh"
#include "sim/observers.hh"
#include "sim/registry.hh"

using namespace duplex;

int
main(int argc, char **argv)
{
    ArgParser args;
    args.addFlag("model", "mixtral | glam | grok1 | opt | llama3",
                 "mixtral");
    args.addFlag("qps", "target arrival rate", "8");
    args.addFlag("lin", "mean prompt length", "2048");
    args.addFlag("lout", "mean generation length", "512");
    args.addFlag("tbt-slo", "TBT p99 SLO in ms", "50");
    args.parse(argc, argv);

    const ModelConfig model = modelByName(args.getString("model"));
    const double qps = args.getDouble("qps");
    const double slo = args.getDouble("tbt-slo");

    std::printf("Planning for %s at %.0f req/s (Lin %lld, Lout "
                "%lld), TBT p99 SLO %.0f ms\n\n",
                model.name.c_str(), qps,
                static_cast<long long>(args.getInt("lin")),
                static_cast<long long>(args.getInt("lout")), slo);

    struct Candidate
    {
        std::string system;
        int devices;
    };
    const SystemTopology base = defaultTopology(model);
    const std::vector<Candidate> candidates = {
        {"gpu", base.totalDevices()},
        {"duplex", base.totalDevices()},
        {"duplex-pe-et", base.totalDevices()},
        {"gpu-2x", base.totalDevices() * 2},
    };

    Table t({"System", "devices", "tok/s", "TBT p99 ms",
             "T2FT p50 ms", "KV use", "meets SLO"});
    const Candidate *winner = nullptr;
    for (const Candidate &cand : candidates) {
        SimConfig c;
        c.systemName = cand.system;
        c.model = model;
        c.maxBatch = 128;
        c.workload.meanInputLen = args.getInt("lin");
        c.workload.meanOutputLen = args.getInt("lout");
        c.workload.qps = qps;
        c.numRequests = 96;
        c.warmupRequests = 8;
        c.maxStages = 40000;
        SimulationEngine engine(c);
        KvOccupancyTrace kv_trace;
        engine.addObserver(&kv_trace);
        SystemOptions opts;
        opts.seed = c.seed;
        const std::unique_ptr<ServingSystem> system =
            makeSystem(cand.system, model, opts);
        const SimResult r = engine.run(*system);
        const double tbt = r.metrics.tbtMs.percentile(99);
        const bool ok = tbt <= slo;
        if (ok && (winner == nullptr ||
                   cand.devices < winner->devices))
            winner = &cand;
        t.startRow();
        t.cell(system->name());
        t.cell(static_cast<std::int64_t>(cand.devices));
        t.cell(r.metrics.throughputTokensPerSec(), 0);
        t.cell(tbt, 2);
        t.cell(r.metrics.t2ftMs.percentile(50), 1);
        t.cell(static_cast<double>(kv_trace.peakKvTokens()) /
                   static_cast<double>(system->maxKvTokens()),
               2);
        t.cell(ok ? "yes" : "no");
    }
    t.print();
    if (winner != nullptr) {
        std::printf("\nRecommendation: %s with %d devices.\n",
                    SystemRegistry::instance()
                        .displayName(winner->system)
                        .c_str(),
                    winner->devices);
    } else {
        std::printf("\nNo candidate meets the SLO; lower the load "
                    "or relax the objective.\n");
    }
    return 0;
}
