/**
 * @file
 * Chatbot scenario (the paper's motivating conversational use
 * case, Section III-B): every dialogue round resubmits the growing
 * history as a new request, so Lin climbs round after round while
 * Lout stays answer-sized. The example checks which systems hold a
 * TBT / T2FT service-level objective as the conversation deepens.
 *
 *   ./chatbot_serving --rounds=4 --qps=6
 */

#include <cstdio>

#include "common/argparse.hh"
#include "common/table.hh"
#include "sim/engine.hh"
#include "sim/registry.hh"

using namespace duplex;

int
main(int argc, char **argv)
{
    ArgParser args;
    args.addFlag("rounds", "dialogue rounds to evaluate", "4");
    args.addFlag("first-prompt", "tokens in the first prompt",
                 "512");
    args.addFlag("answer", "mean answer length", "256");
    args.addFlag("qps", "request arrival rate", "6");
    args.addFlag("tbt-slo", "TBT p99 SLO in ms", "40");
    args.addFlag("t2ft-slo", "T2FT p50 SLO in ms", "1500");
    args.parse(argc, argv);

    const ModelConfig model = mixtralConfig();
    const int rounds = static_cast<int>(args.getInt("rounds"));
    const std::int64_t answer = args.getInt("answer");
    const double tbt_slo = args.getDouble("tbt-slo");
    const double t2ft_slo = args.getDouble("t2ft-slo");

    std::printf("Chatbot on %s, %.0f req/s, answer ~%lld tokens, "
                "SLO: TBT p99 < %.0f ms, T2FT p50 < %.0f ms\n",
                model.name.c_str(), args.getDouble("qps"),
                static_cast<long long>(answer), tbt_slo, t2ft_slo);

    Table t({"Round", "history Lin", "System", "TBT p99",
             "T2FT p50", "SLO"});
    for (int round = 1; round <= rounds; ++round) {
        // History = first prompt + all previous answers and
        // follow-up questions.
        const std::int64_t lin =
            args.getInt("first-prompt") +
            (round - 1) * (answer + 128);
        for (const std::string system :
             {"gpu", "duplex-pe-et"}) {
            SimConfig c;
            c.systemName = system;
            c.model = model;
            c.maxBatch = 64;
            c.workload.meanInputLen = lin;
            c.workload.meanOutputLen = answer;
            c.workload.qps = args.getDouble("qps");
            c.numRequests = 96;
            c.warmupRequests = 8;
            c.maxStages = 30000;
            const SimResult r = SimulationEngine(c).run();
            const double tbt = r.metrics.tbtMs.percentile(99);
            const double t2ft = r.metrics.t2ftMs.percentile(50);
            t.startRow();
            t.cell(static_cast<std::int64_t>(round));
            t.cell(lin);
            t.cell(SystemRegistry::instance().displayName(system));
            t.cell(tbt, 2);
            t.cell(t2ft, 1);
            t.cell(tbt <= tbt_slo && t2ft <= t2ft_slo ? "ok"
                                                      : "VIOLATED");
        }
    }
    t.print();
    std::printf("\nAs rounds accumulate, Lin grows and mixed "
                "stages get heavier — exactly the regime where "
                "the paper says co-processing earns its keep.\n");
    return 0;
}
